"""Nets and connection endpoints.

A *net* is a named bundle of wires.  Module pins and netlist ports are
connected to *endpoints*, which are one of:

- :class:`NetRef` -- a contiguous bit-slice of a net (possibly the whole
  net),
- :class:`Concat` -- a concatenation of endpoints (stored LSB-first, so
  ``Concat((a, b))`` has ``a`` in the low bits),
- :class:`Const` -- a constant value, used to tie unused control pins.

Bit-slicing and concatenation are what let DTAS decomposition rules wire
a 16-bit adder out of four 4-bit adders without inserting explicit
split/merge pseudo-components.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple, Union


@dataclass(eq=False)
class Net:
    """A named bundle of ``width`` wires inside one netlist.

    Nets use identity equality: two nets with the same name in different
    netlists are different wires.
    """

    name: str
    width: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("net name must be non-empty")
        if self.width < 1:
            raise ValueError(f"net {self.name!r}: width must be >= 1, got {self.width}")

    def __getitem__(self, index: Union[int, slice]) -> "NetRef":
        """Slice the net.  ``net[3]`` is bit 3; ``net[0:4]`` is bits 0..3
        (Python half-open convention on the high end)."""
        if isinstance(index, slice):
            if index.step not in (None, 1):
                raise ValueError("net slices must have step 1")
            lsb = 0 if index.start is None else index.start
            stop = self.width if index.stop is None else index.stop
            return NetRef(self, lsb, stop - 1)
        return NetRef(self, index, index)

    def ref(self) -> "NetRef":
        """Reference to the whole net."""
        return NetRef(self, 0, self.width - 1)

    def __repr__(self) -> str:
        return f"Net({self.name!r}, width={self.width})"


@dataclass(frozen=True)
class NetRef:
    """A contiguous slice ``[msb:lsb]`` of a net (inclusive bounds)."""

    net: Net
    lsb: int
    msb: int

    def __post_init__(self) -> None:
        if self.lsb < 0 or self.msb < self.lsb:
            raise ValueError(f"bad slice [{self.msb}:{self.lsb}] of {self.net.name}")
        if self.msb >= self.net.width:
            raise ValueError(
                f"slice [{self.msb}:{self.lsb}] exceeds net {self.net.name!r} "
                f"of width {self.net.width}"
            )

    @property
    def width(self) -> int:
        return self.msb - self.lsb + 1

    @property
    def is_whole(self) -> bool:
        return self.lsb == 0 and self.msb == self.net.width - 1

    def __repr__(self) -> str:
        if self.is_whole:
            return f"NetRef({self.net.name})"
        return f"NetRef({self.net.name}[{self.msb}:{self.lsb}])"


@dataclass(frozen=True)
class Const:
    """A constant driver, e.g. a tied-off control pin.

    ``value`` is interpreted as an unsigned integer over ``width`` bits.
    """

    value: int
    width: int = 1

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError("constant width must be >= 1")
        if not 0 <= self.value < (1 << self.width):
            raise ValueError(f"constant {self.value} does not fit in {self.width} bits")


@dataclass(frozen=True)
class Concat:
    """LSB-first concatenation of endpoints."""

    parts: Tuple["Endpoint", ...]

    def __post_init__(self) -> None:
        if not self.parts:
            raise ValueError("concatenation must have at least one part")

    @property
    def width(self) -> int:
        return sum(endpoint_width(p) for p in self.parts)


Endpoint = Union[NetRef, Const, Concat]


def endpoint_width(endpoint: Endpoint) -> int:
    """Width in bits of any endpoint."""
    return endpoint.width


def endpoint_bits(endpoint: Endpoint) -> Iterator[Optional[Tuple[Net, int]]]:
    """Yield per-bit atoms of an endpoint, LSB first.

    Each atom is a ``(net, bit_index)`` pair, or ``None`` for a constant
    bit.  The timing engine and the simulator both walk endpoints this
    way, so slices and concatenations need no special cases elsewhere.
    """
    if isinstance(endpoint, NetRef):
        for bit in range(endpoint.lsb, endpoint.msb + 1):
            yield (endpoint.net, bit)
    elif isinstance(endpoint, Const):
        for _ in range(endpoint.width):
            yield None
    elif isinstance(endpoint, Concat):
        for part in endpoint.parts:
            yield from endpoint_bits(part)
    else:  # pragma: no cover - defensive
        raise TypeError(f"not an endpoint: {endpoint!r}")


def endpoint_masks(endpoint: Endpoint) -> Iterator[Tuple[Optional[Net], int]]:
    """Yield slice-granular ``(net, bitmask)`` atoms of an endpoint.

    The bitmask is in the net's own bit space (``net[5:3]`` yields mask
    ``0b111000``).  Constant parts yield ``(None, width)`` so callers
    can detect them without a second walk.  This is the slice-granular
    sibling of :func:`endpoint_bits`; the timing compiler and the
    netlist validator both fold wiring at this granularity.
    """
    if isinstance(endpoint, NetRef):
        yield endpoint.net, ((1 << endpoint.width) - 1) << endpoint.lsb
    elif isinstance(endpoint, Const):
        yield None, endpoint.width
    elif isinstance(endpoint, Concat):
        for part in endpoint.parts:
            yield from endpoint_masks(part)
    else:  # pragma: no cover - defensive
        raise TypeError(f"not an endpoint: {endpoint!r}")


def endpoint_nets(endpoint: Endpoint) -> Iterator[Net]:
    """Yield every distinct net an endpoint touches (in first-seen order)."""
    seen = set()
    for atom in endpoint_bits(endpoint):
        if atom is None:
            continue
        net, _ = atom
        if id(net) not in seen:
            seen.add(id(net))
            yield net


def const_bits(endpoint: Endpoint) -> Iterator[Optional[int]]:
    """Yield the constant value of each bit, or ``None`` for net bits."""
    if isinstance(endpoint, NetRef):
        for _ in range(endpoint.width):
            yield None
    elif isinstance(endpoint, Const):
        for bit in range(endpoint.width):
            yield (endpoint.value >> bit) & 1
    elif isinstance(endpoint, Concat):
        for part in endpoint.parts:
            yield from const_bits(part)
    else:  # pragma: no cover - defensive
        raise TypeError(f"not an endpoint: {endpoint!r}")
