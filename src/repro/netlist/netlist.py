"""Module instances and hierarchical netlists.

A :class:`Netlist` is one level of structure: named ports, internal
nets, and a list of :class:`ModuleInst`.  Each module instance carries
its own port signature and a connection map from pin names to endpoints.

The *meaning* of a module (its component specification) is stored as an
opaque ``spec`` object -- in this reproduction it is always a
``repro.core.specs.ComponentSpec`` -- so the netlist substrate has no
dependency on DTAS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.netlist.nets import Concat, Const, Endpoint, Net, NetRef, endpoint_width
from repro.netlist.ports import Direction, Port


@dataclass
class ModuleInst:
    """An instance of a component inside a netlist.

    ``ports`` is the instance's full port signature; ``connections``
    maps pin names to endpoints in the enclosing netlist.
    """

    name: str
    spec: object
    ports: Tuple[Port, ...]
    connections: Dict[str, Endpoint] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._ports_by_name = {p.name: p for p in self.ports}
        if len(self._ports_by_name) != len(self.ports):
            raise ValueError(f"module {self.name!r}: duplicate pin names")

    def port(self, pin: str) -> Port:
        """Look up a pin by name."""
        port = self._ports_by_name.get(pin)
        if port is None:
            raise KeyError(f"module {self.name!r} has no pin {pin!r}")
        return port

    def connect(self, pin: str, endpoint: Endpoint) -> None:
        """Attach ``endpoint`` to ``pin``, checking the width."""
        port = self.port(pin)
        if endpoint_width(endpoint) != port.width:
            raise ValueError(
                f"module {self.name!r} pin {pin!r}: width mismatch "
                f"(pin {port.width}, endpoint {endpoint_width(endpoint)})"
            )
        self.connections[pin] = endpoint

    def input_pins(self) -> Iterable[Port]:
        return (p for p in self.ports if p.is_input)

    def output_pins(self) -> Iterable[Port]:
        return (p for p in self.ports if p.is_output)


class Netlist:
    """One level of structural hierarchy.

    Every netlist port is backed by an internal net of the same name and
    width, so rule code can treat ports and internal wiring uniformly:
    ``netlist.port_net("A")`` is a :class:`Net` that module pins connect
    to.
    """

    def __init__(self, name: str, doc: str = "") -> None:
        self.name = name
        self.doc = doc
        self.ports: List[Port] = []
        self.nets: List[Net] = []
        self.modules: List[ModuleInst] = []
        self._port_nets: Dict[str, Net] = {}
        self._nets_by_name: Dict[str, Net] = {}
        self._modules_by_name: Dict[str, ModuleInst] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_port(self, port: Port) -> Net:
        """Declare a netlist port; returns its backing net."""
        if port.name in self._port_nets:
            raise ValueError(f"netlist {self.name!r}: duplicate port {port.name!r}")
        self.ports.append(port)
        net = self.add_net(port.name, port.width)
        self._port_nets[port.name] = net
        return net

    def add_ports(self, ports: Iterable[Port]) -> None:
        for port in ports:
            self.add_port(port)

    def add_net(self, name: str, width: int = 1) -> Net:
        """Create an internal net with a unique name."""
        unique = name
        counter = 1
        while unique in self._nets_by_name:
            unique = f"{name}_{counter}"
            counter += 1
        net = Net(unique, width)
        self.nets.append(net)
        self._nets_by_name[unique] = net
        return net

    def add_module(
        self,
        name: str,
        spec: object,
        ports: Iterable[Port],
        connections: Optional[Mapping[str, Endpoint]] = None,
    ) -> ModuleInst:
        """Instantiate a component; connections may be completed later
        with :meth:`ModuleInst.connect`."""
        unique = name
        counter = 1
        while unique in self._modules_by_name:
            unique = f"{name}_{counter}"
            counter += 1
        inst = ModuleInst(unique, spec, tuple(ports))
        for pin, endpoint in dict(connections or {}).items():
            inst.connect(pin, endpoint)
        self.modules.append(inst)
        self._modules_by_name[unique] = inst
        return inst

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def port(self, name: str) -> Port:
        for p in self.ports:
            if p.name == name:
                return p
        raise KeyError(f"netlist {self.name!r} has no port {name!r}")

    def has_port(self, name: str) -> bool:
        return name in self._port_nets

    def port_net(self, name: str) -> Net:
        """The net backing a netlist port."""
        return self._port_nets[name]

    def net(self, name: str) -> Net:
        return self._nets_by_name[name]

    def module(self, name: str) -> ModuleInst:
        return self._modules_by_name[name]

    def input_ports(self) -> List[Port]:
        return [p for p in self.ports if p.is_input]

    def output_ports(self) -> List[Port]:
        return [p for p in self.ports if p.is_output]

    # ------------------------------------------------------------------
    # analysis helpers
    # ------------------------------------------------------------------
    def drivers_of_bit(self, net: Net, bit: int) -> List[Tuple[str, str]]:
        """Who drives ``net[bit]``?  Returns ``(kind, name)`` pairs where
        kind is ``"port"`` (an input port seen from inside) or
        ``"pin"`` with name ``"module.pin"``."""
        from repro.netlist.nets import endpoint_bits

        found: List[Tuple[str, str]] = []
        for port in self.input_ports():
            backing = self._port_nets[port.name]
            if backing is net and 0 <= bit < backing.width:
                found.append(("port", port.name))
        for inst in self.modules:
            for pin in inst.output_pins():
                endpoint = inst.connections.get(pin.name)
                if endpoint is None:
                    continue
                for atom in endpoint_bits(endpoint):
                    if atom is not None and atom[0] is net and atom[1] == bit:
                        found.append(("pin", f"{inst.name}.{pin.name}"))
                        break
        return found

    def count_modules(self, recurse_spec_of: Optional[type] = None) -> int:
        """Number of module instances at this level."""
        return len(self.modules)

    def __repr__(self) -> str:
        return (
            f"Netlist({self.name!r}, ports={len(self.ports)}, "
            f"nets={len(self.nets)}, modules={len(self.modules)})"
        )


def tie_low(width: int = 1) -> Const:
    """Constant zero endpoint."""
    return Const(0, width)


def tie_high(width: int = 1) -> Const:
    """Constant all-ones endpoint."""
    return Const((1 << width) - 1, width)
