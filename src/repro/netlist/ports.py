"""Typed ports for components, cells, and netlists.

GENUS distinguishes several pin kinds on a component (see the LEGEND
counter description in Figure 2 of the paper): data inputs/outputs, a
clock, an enable, control lines, and asynchronous set/reset lines.  The
pin kind matters to the rest of the system:

- the timing engine excludes clock and asynchronous pins from
  combinational paths,
- the connectivity binder only muxes data pins,
- the VHDL translator annotates them differently.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Direction(enum.Enum):
    """Signal flow direction of a port, seen from the component."""

    IN = "in"
    OUT = "out"

    def flipped(self) -> "Direction":
        """Return the opposite direction (used when a netlist port is
        viewed from the inside rather than the outside)."""
        return Direction.OUT if self is Direction.IN else Direction.IN


class PinKind(enum.Enum):
    """Functional role of a pin, mirroring LEGEND's port categories."""

    DATA = "data"
    CLOCK = "clock"
    ENABLE = "enable"
    CONTROL = "control"
    ASYNC = "async"


@dataclass(frozen=True)
class Port:
    """A named, fixed-width port.

    Ports are immutable value objects so that component specifications
    (which embed their port signature) remain hashable.
    """

    name: str
    width: int
    direction: Direction
    kind: PinKind = field(default=PinKind.DATA)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("port name must be non-empty")
        if self.width < 1:
            raise ValueError(f"port {self.name!r}: width must be >= 1, got {self.width}")

    @property
    def is_input(self) -> bool:
        return self.direction is Direction.IN

    @property
    def is_output(self) -> bool:
        return self.direction is Direction.OUT

    @property
    def is_sequential_boundary(self) -> bool:
        """True when the pin never participates in a combinational path."""
        return self.kind in (PinKind.CLOCK, PinKind.ASYNC)

    def describe(self) -> str:
        """Human-readable one-line description, used in reports."""
        return f"{self.name}[{self.width}] {self.direction.value} ({self.kind.value})"


def in_port(name: str, width: int = 1, kind: PinKind = PinKind.DATA) -> Port:
    """Shorthand constructor for an input port."""
    return Port(name, width, Direction.IN, kind)


def out_port(name: str, width: int = 1, kind: PinKind = PinKind.DATA) -> Port:
    """Shorthand constructor for an output port."""
    return Port(name, width, Direction.OUT, kind)


def clock_port(name: str = "CLK") -> Port:
    """Shorthand constructor for a clock input."""
    return Port(name, 1, Direction.IN, PinKind.CLOCK)


def control_port(name: str, width: int = 1) -> Port:
    """Shorthand constructor for a control input."""
    return Port(name, width, Direction.IN, PinKind.CONTROL)
