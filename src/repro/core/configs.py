"""Configurations: costed, globally-consistent implementation choices.

DTAS's first search-control principle (S1) says a design may not
contain "two or more modules with the same component specification that
are not instances of the same component implementation".  We implement
that exactly: a :class:`Configuration` carries the full mapping
*specification -> chosen implementation* for the subtree it describes,
and combining configurations from sibling modules rejects conflicting
choices.

A configuration also carries its cost: total area (equivalent NAND
gates) and the full input-to-output pin delay matrix (nanoseconds), so
parents can run structural timing over their decomposition netlists.
The scalar worst-delay summary is computed once at construction (it is
the sort key of every filter pass), and per-spec choice lookup is
backed by a lazily built dictionary so materializing a design tree is
linear rather than quadratic in tree size.

Configurations are *interned* (:mod:`repro.core.interning`):
:func:`make_configuration` returns one canonical instance per distinct
(area, delays, choices) value, so equality between interned instances
is an O(1) identity check, duplicate allocation disappears from the
keep-all ablations, and every lazy per-object cache is computed once
process-wide.

Combining sibling options is *streaming*: :func:`iter_compatible`
enumerates the S1-consistent cross product lazily, so a combination cap
bounds the work performed, not just the length of a list that was
already fully materialized.  Sibling specification sets are analysed up
front: an option list whose specs appear in no other list can never
conflict, so its choices are merged with plain dictionary writes and no
comparisons at all; for lists that *can* conflict, each option's
choices are split once (memoized by interned id) into the shared part
that needs checking and the private part that is written blind.

Enumeration order is pluggable: the default ``"lex"`` order walks the
option lists exactly as given (the seed semantics, and what keeps
benchmark results byte-identical), while ``"frontier"`` reorders each
option list by Pareto rank so a ``limit`` keeps the best designs
instead of the lexicographically first, and ``"auto"``
(:func:`adaptive_order`) keeps a short lex prefix ahead of the
frontier tail so tiny caps retain the knee region *and* the delay
corner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.interning import CONFIGURATIONS
from repro.core.specs import ComponentSpec

Choice = Tuple[ComponentSpec, int]  # (specification, implementation index)
DelayItems = Tuple[Tuple[Tuple[str, str], float], ...]


class ChoiceTuple(tuple):
    """A choice tuple that caches its hash.

    Plain tuples recompute their hash on every use, and a choice
    tuple's hash walks every spec's (Python-level) ``__hash__``.  The
    intern table hashes the choices part of its key on every lookup --
    twice on a miss (probe, then insert) -- so the batched evaluator
    builds rows' choice items as ``ChoiceTuple`` and pays the spec walk
    once per instance instead of once per dictionary operation.
    Equality and the hash *value* are exactly the underlying tuple's,
    so mixing with plain tuples (store revivals, scalar-path rows)
    stays transparent; pickles degrade to plain tuples so a cached
    hash (which embeds the per-process string-hash seed) never crosses
    a process boundary.
    """

    def __hash__(self) -> int:
        d = self.__dict__
        h = d.get("_h")
        if h is None:
            h = d["_h"] = tuple.__hash__(self)
        return h

    def __reduce__(self):
        return (tuple, (tuple(self),))

#: An order backend reorders one option list; ``None`` keeps the list
#: as given (lexicographic enumeration).
OrderFn = Callable[[Sequence["Configuration"]], List["Configuration"]]


@dataclass(frozen=True, eq=False)
class Configuration:
    """One consistent, costed implementation choice for a spec subtree.

    Equality and hashing are by value -- (area, delays, choices) --
    with an identity fast path that the intern table makes effective:
    configurations built through :func:`make_configuration` share one
    canonical instance per value, so the equal case is `a is b`.
    """

    area: float
    delays: DelayItems
    choices: Tuple[Choice, ...]
    #: Scalar summary (worst pin-to-pin delay), precomputed because it
    #: is read on every filter sort key and dominance comparison.  It is
    #: derived from ``delays``, so it is excluded from equality/hash.
    delay: float = field(default=-1.0, compare=False)

    def __post_init__(self) -> None:
        if self.delay < 0.0:
            object.__setattr__(
                self, "delay", max((d for _, d in self.delays), default=0.0)
            )

    # -- identity ------------------------------------------------------
    @property
    def interned_id(self) -> Optional[int]:
        """Stable small-int identity assigned by the intern table, or
        ``None`` for instances built outside it."""
        return self.__dict__.get("_intern_id")

    def __eq__(self, other: object) -> bool:
        # Identity first: interned equal configurations are the same
        # object, so the common case never compares tuples.  (No
        # "both-interned => unequal" shortcut: InternTable.clear() may
        # leave equal canonical instances from different table
        # generations alive, and they must still compare equal.)
        if self is other:
            return True
        if not isinstance(other, Configuration):
            return NotImplemented
        return (
            self.area == other.area
            and self.delays == other.delays
            and self.choices == other.choices
        )

    def __hash__(self) -> int:
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.area, self.delays, self.choices))
            object.__setattr__(self, "_hash", cached)
        return cached

    # -- cost views ----------------------------------------------------
    def delay_matrix(self) -> Dict[Tuple[str, str], float]:
        return dict(self.delays)

    @property
    def arc_keys(self) -> Tuple[Tuple[str, str], ...]:
        """The (input, output) pairs of the delay matrix, in ``delays``
        order -- the arc signature used by compiled timing kernels."""
        cached = self.__dict__.get("_arc_keys")
        if cached is None:
            cached = tuple(k for k, _ in self.delays)
            object.__setattr__(self, "_arc_keys", cached)
        return cached

    @property
    def delay_values(self) -> Tuple[float, ...]:
        """The delay weights, parallel to :attr:`arc_keys`."""
        cached = self.__dict__.get("_delay_values")
        if cached is None:
            cached = tuple(v for _, v in self.delays)
            object.__setattr__(self, "_delay_values", cached)
        return cached

    def choice_map(self) -> Dict[ComponentSpec, int]:
        return dict(self.choices)

    @property
    def choice_specs(self) -> frozenset:
        """The specs this configuration binds, as a cached frozenset.

        The S1 combiners union these per option list to find which
        lists can conflict at all; caching on the (interned, shared)
        configuration makes that a C-level set union instead of a
        re-scan of every choice tuple on every evaluation."""
        cached = self.__dict__.get("_choice_specs")
        if cached is None:
            cached = frozenset(spec for spec, _ in self.choices)
            object.__setattr__(self, "_choice_specs", cached)
        return cached

    def chosen_impl(self, spec: ComponentSpec) -> Optional[int]:
        table = self.__dict__.get("_impl_by_spec")
        if table is None:
            table = dict(self.choices)
            object.__setattr__(self, "_impl_by_spec", table)
        return table.get(spec)

    def describe(self) -> str:
        return f"area={self.area:.0f} gates, delay={self.delay:.1f} ns"

    # -- pickling ------------------------------------------------------
    def __reduce__(self):
        """Pickle by value only -- none of the lazily built caches (and
        never ``_intern_id``, which is process-specific) enter the
        payload; unpickling re-interns, so configurations shipped back
        from a multiprocessing worker land as canonical instances of
        the receiving process."""
        return (_restore_configuration, (self.area, self.delays, self.choices))


def _restore_configuration(area, delays, choices) -> Configuration:
    """Unpickle target: rebuild through the intern table."""
    return CONFIGURATIONS.revive_parts(area, delays, choices, Configuration)


def revive_configuration(
    area: float,
    delays: Mapping[Tuple[str, str], float],
    choices: Mapping[ComponentSpec, int],
) -> Configuration:
    """Re-intern a configuration loaded from outside the process (the
    result store's JSON payloads use this).  Same normalization as
    :func:`make_configuration`, same canonical instance -- a loaded
    configuration equal to a freshly computed one *is* that object --
    but counted separately by the intern table's ``revived`` stat."""
    delay_items = tuple(sorted(delays.items()))
    choice_items = ChoiceTuple(
        sorted(choices.items(), key=lambda kv: kv[0].sort_key))
    return CONFIGURATIONS.revive_parts(
        float(area), delay_items, choice_items, Configuration
    )


def make_configuration(
    area: float,
    delays: Mapping[Tuple[str, str], float],
    choices: Mapping[ComponentSpec, int],
) -> Configuration:
    """Normalized, interned constructor (sorted, hashable tuples; one
    canonical instance per value process-wide)."""
    delay_items = tuple(sorted(delays.items()))
    choice_items = ChoiceTuple(
        sorted(choices.items(), key=lambda kv: kv[0].sort_key))
    return CONFIGURATIONS.intern_parts(
        float(area), delay_items, choice_items, Configuration
    )


def make_configuration_parts(
    area: float,
    delay_items: DelayItems,
    choice_items: Tuple[Choice, ...],
    delay: float,
) -> Configuration:
    """Interned constructor for *already canonical* parts.

    The batched evaluator builds its delay items pre-sorted (the kernel
    result layout is sorted once per arc signature), merges choice items
    in sorted order, and knows the worst-delay scalar from the block's
    value columns -- so the normalizing sorts and the ``__post_init__``
    scan of :func:`make_configuration` would be pure overhead.  The
    caller owns canonicality: parts must equal what
    :func:`make_configuration` would produce for the same value.
    """
    return CONFIGURATIONS.intern_parts(
        area, delay_items, choice_items, Configuration, delay
    )


def merge_choices(
    parts: Iterable[Mapping[ComponentSpec, int]]
) -> Optional[Dict[ComponentSpec, int]]:
    """Merge choice maps from sibling modules.

    Returns ``None`` when two parts pick different implementations for
    the same specification -- the combination is rejected, enforcing S1.
    """
    merged: Dict[ComponentSpec, int] = {}
    for part in parts:
        for spec, impl in part.items():
            existing = merged.get(spec)
            if existing is None:
                merged[spec] = impl
            elif existing != impl:
                return None
    return merged


def prune_dominated_options(
    options: Sequence[Configuration],
    shared_specs: Optional[set] = None,
) -> List[Configuration]:
    """Drop options that are *interchangeable-for-the-worse*.

    Two options are interchangeable for S1 composition when their
    choices agree on every spec in ``shared_specs`` -- the specs that
    can also appear in sibling option lists; choices on specs private
    to this list can never cause a conflict elsewhere.  Among
    interchangeable options, one that is at least as good in area and
    in every delay arc (same arc-key set) and strictly better somewhere
    dominates: every combination the worse option could contribute, the
    better one contributes at pointwise-lower cost.

    With ``shared_specs=None`` the *full* choice map must agree -- the
    conservative form used directly in tests.  Opt-in because a
    dominated combination can still tie the dominating one on the
    scalar (area, worst-delay) pair, so downstream filter tie-breaking
    may keep a different (cost-equivalent) representative than
    unpruned evaluation.
    """

    def footprint(option: Configuration) -> Tuple[Choice, ...]:
        if shared_specs is None:
            return option.choices
        return tuple(c for c in option.choices if c[0] in shared_specs)

    kept: List[Configuration] = []
    kept_footprints: List[Tuple[Choice, ...]] = []
    for option in options:
        own_footprint = footprint(option)
        dominated = False
        for other, other_footprint in zip(kept, kept_footprints):
            if other_footprint != own_footprint:
                continue
            if other.arc_keys != option.arc_keys:
                continue
            if other.area > option.area:
                continue
            values, other_values = option.delay_values, other.delay_values
            if any(o > v for o, v in zip(other_values, values)):
                continue
            if other.area < option.area or any(
                o < v for o, v in zip(other_values, values)
            ):
                dominated = True
                break
        if not dominated:
            kept.append(option)
            kept_footprints.append(own_footprint)
    return kept


# ---------------------------------------------------------------------------
# Enumeration orders
# ---------------------------------------------------------------------------

def pareto_rank_order(options: Sequence[Configuration]) -> List[Configuration]:
    """Reorder one option list frontier-first for cap-bounded search.

    Non-dominated sorting on (area, worst delay): rank 0 is the Pareto
    frontier of the list, rank 1 the frontier of what remains, and so
    on.  Within each rank the points are emitted in a *two-ended
    sweep* -- smallest-area first, then fastest, then the next point
    from each end alternately -- so that even a very short prefix of
    the list contains both cost corners, not just the cheap-and-slow
    end.  Lexicographic enumeration over sorted lists explores the
    small-area corner of every sibling before it ever reaches a fast
    option of the first one; seeding each list this way is what lets
    ``limit`` keep the best designs (both corners of the composed
    frontier) instead of the lexicographically first.

    Deterministic: ties are broken by (area, delay, original index).
    """
    n = len(options)
    if n <= 1:
        return list(options)
    by_cost = sorted(range(n), key=lambda i: (options[i].area,
                                              options[i].delay, i))
    remaining = by_cost
    rank_groups: List[List[int]] = []
    while remaining:
        best_delay = float("inf")
        group: List[int] = []
        leftover: List[int] = []
        for i in remaining:
            if options[i].delay < best_delay - 1e-12:
                group.append(i)
                best_delay = options[i].delay
            else:
                leftover.append(i)
        rank_groups.append(group)
        remaining = leftover
    ordered: List[int] = []
    for group in rank_groups:
        lo, hi = 0, len(group) - 1
        take_lo = True
        while lo <= hi:
            if take_lo:
                ordered.append(group[lo])
                lo += 1
            else:
                ordered.append(group[hi])
                hi -= 1
            take_lo = not take_lo
    return [options[i] for i in ordered]


#: How many original-order options the ``auto`` order keeps in front
#: of the frontier tail.  Three is measured, not guessed: on ALU64 at
#: ``max_combinations=10`` a prefix of 3 keeps lex's knee-region best
#: area-delay product (115756 gate-ns, vs 245590 for pure frontier)
#: while the frontier tail still reaches the 28.6 ns delay corner that
#: lex misses (34.2 ns); shorter prefixes lose the knee, longer ones
#: re-create lex's corner blindness under tiny caps.
AUTO_LEX_PREFIX = 3


def adaptive_order(options: Sequence[Configuration],
                   limit: Optional[int] = None) -> List[Configuration]:
    """Cap-adaptive enumeration order: lex prefix + frontier tail.

    Under a combination cap the two built-in orders fail in opposite
    corners: ``lex`` explores the lexicographically-early combinations
    (preserving the knee region the seed semantics find) but never
    reaches a fast option of a late list, while ``frontier``
    (:func:`pareto_rank_order`) seeds both cost corners but spends the
    tiny-cap budget hopping between extremes and thins the knee.  This
    order keeps each list's first :data:`AUTO_LEX_PREFIX` options in
    their original positions -- so the capped enumeration still covers
    the lex-early region -- and appends the remaining options in
    frontier order, so the delay corner is seeded right behind them.

    It is *limit-aware* (the streaming combiner passes its cap): with
    no cap there is nothing to ration and the list is kept as given,
    preserving the byte-stable seed semantics; with a cap smaller than
    the prefix the prefix shrinks to the cap (a budget of 2 should not
    be spent entirely on lex replay).
    """
    n = len(options)
    if limit is None or n <= 2:
        return list(options)
    keep = min(n, max(1, min(AUTO_LEX_PREFIX, limit)))
    head = list(options[:keep])
    head_ids = {id(option) for option in head}
    tail = [option for option in pareto_rank_order(options)
            if id(option) not in head_ids]
    return head + tail


#: Marks an order callable whose signature is ``(options, limit)``:
#: the streaming combiner passes its combination cap so the order can
#: ration the prefix (see :func:`adaptive_order`).
adaptive_order.limit_aware = True  # type: ignore[attr-defined]


#: Built-in enumeration orders (``None`` = keep the given list order).
#: This is the *engine-level* table: only built-ins live here, and the
#: engine otherwise takes order callables directly.  Name-based
#: third-party orders register in :data:`repro.api.registry.ORDERS`
#: and are resolved to callables at the Session/CLI layer.
ORDERINGS: Dict[str, Optional[OrderFn]] = {
    "lex": None,
    "frontier": pareto_rank_order,
    "auto": adaptive_order,
}


def resolve_order(order: Union[str, OrderFn, None]) -> Optional[OrderFn]:
    """Resolve an order designator: ``None``/``"lex"`` mean no
    reordering, ``"frontier"`` the Pareto-rank order, and a callable
    passes through (the extension point name-registered backends use)."""
    if order is None:
        return None
    if callable(order):
        return order
    try:
        return ORDERINGS[order]
    except KeyError:
        raise ValueError(
            f"unknown enumeration order {order!r}; "
            f"known: {', '.join(sorted(ORDERINGS))}"
        ) from None


# ---------------------------------------------------------------------------
# The streaming S1 combiner
# ---------------------------------------------------------------------------

def _prepare_lists(
    option_lists: Sequence[Sequence[Configuration]],
    limit: Optional[int],
    prune_dominated: bool,
    order: Union[str, OrderFn, None],
) -> Tuple[List[Sequence[Configuration]], List[set], set]:
    """Shared front half of the S1 combiners: per-list spec universes,
    the shared-spec set (specs that can collide across lists), optional
    dominance pruning, and the enumeration-order transform.  Factored
    out so the streaming and the batched enumerations cannot drift."""
    # Which option lists can conflict at all?  A spec can collide only
    # when it appears in the choice universes of two different lists.
    universes: List[set] = []
    for options in option_lists:
        universe: set = set()
        for config in options:
            universe |= config.choice_specs
        universes.append(universe)
    shared: set = set()
    seen: set = set()
    for universe in universes:
        shared |= universe & seen
        seen |= universe

    lists: List[Sequence[Configuration]] = (
        [prune_dominated_options(options, shared) for options in option_lists]
        if prune_dominated
        else list(option_lists)
    )
    order_fn = resolve_order(order)
    if order_fn is not None:
        if getattr(order_fn, "limit_aware", False):
            lists = [order_fn(options, limit) for options in lists]
        else:
            lists = [order_fn(options) for options in lists]
    return lists, universes, shared


def iter_compatible(
    option_lists: Sequence[Sequence[Configuration]],
    limit: Optional[int] = None,
    prune_dominated: bool = False,
    order: Union[str, OrderFn, None] = None,
) -> Iterator[Tuple[Tuple[Configuration, ...], Dict[ComponentSpec, int]]]:
    """Stream the S1-consistent cross product of per-spec options.

    Yields ``(chosen configurations, merged choice map)`` in exactly
    the order the nested-loop cross product would produce them, pruning
    conflicting prefixes as early as possible.  With ``limit``, the
    enumeration *stops* after that many combinations -- bounding the
    work done, not just the output returned.  With ``order``, each
    option list is reordered first (``"frontier"`` seeds by Pareto
    rank, so the limited prefix holds the best designs).

    The yielded choice map is reused between iterations for speed; copy
    it if it must outlive the loop body (:func:`combine_compatible`
    does exactly that).
    """
    if limit is not None and limit <= 0:
        return
    count = len(option_lists)
    lists, universes, shared = _prepare_lists(
        option_lists, limit, prune_dominated, order)
    checked = [bool(universe & shared) for universe in universes]

    # For conflict-checked lists, split each option's choices once into
    # the shared part (compared against the running merge) and the
    # private part (written blind -- private specs cannot collide).
    # The split is memoized by interned id, so an option appearing in
    # several lists, or the same canonical configuration reached from
    # different nodes, is split exactly once per enumeration.
    split_memo: Dict[int, Tuple[Tuple[Choice, ...], Tuple[Choice, ...]]] = {}

    def split(config: Configuration):
        key = config.interned_id
        if key is None:
            key = -id(config)  # uninterned: fall back to object identity
        cached = split_memo.get(key)
        if cached is None:
            shared_items = tuple(c for c in config.choices if c[0] in shared)
            private_items = tuple(c for c in config.choices if c[0] not in shared)
            cached = split_memo[key] = (shared_items, private_items)
        return cached

    merged: Dict[ComponentSpec, int] = {}
    chosen: List[Optional[Configuration]] = [None] * count
    emitted = 0

    def walk(depth: int) -> Iterator[
        Tuple[Tuple[Configuration, ...], Dict[ComponentSpec, int]]
    ]:
        nonlocal emitted
        if depth == count:
            yield tuple(chosen), merged
            emitted += 1
            return
        options = lists[depth]
        if not checked[depth]:
            # No spec of this list appears anywhere else: conflicts are
            # impossible, so skip the compare-and-merge entirely.
            for config in options:
                chosen[depth] = config
                choices = config.choices
                for spec, impl in choices:
                    merged[spec] = impl
                yield from walk(depth + 1)
                for spec, _ in choices:
                    del merged[spec]
                if limit is not None and emitted >= limit:
                    return
        else:
            for config in options:
                chosen[depth] = config
                shared_items, private_items = split(config)
                consistent = True
                to_add: List[Choice] = []
                for spec, impl in shared_items:
                    existing = merged.get(spec)
                    if existing is None:
                        to_add.append((spec, impl))
                    elif existing != impl:
                        consistent = False
                        break
                if consistent:
                    for spec, impl in to_add:
                        merged[spec] = impl
                    for spec, impl in private_items:
                        merged[spec] = impl
                    yield from walk(depth + 1)
                    for spec, _ in to_add:
                        del merged[spec]
                    for spec, _ in private_items:
                        del merged[spec]
                if limit is not None and emitted >= limit:
                    return

    yield from walk(0)


def combine_compatible(
    option_lists: Sequence[Sequence[Configuration]],
    limit: Optional[int] = None,
    order: Union[str, OrderFn, None] = None,
) -> List[Tuple[Tuple[Configuration, ...], Dict[ComponentSpec, int]]]:
    """Materialized form of :func:`iter_compatible` (kept for callers
    and tests that want the whole list; each result owns its map)."""
    return [
        (chosen, dict(merged))
        for chosen, merged in iter_compatible(option_lists, limit=limit,
                                              order=order)
    ]


#: One batched combination row: the chosen configurations plus the
#: canonically-sorted merged choice items (``None`` = rejected by the
#: caller's own-choice S1 check; the row still counted against the cap).
Row = Tuple[Tuple[Configuration, ...], Optional[Tuple[Choice, ...]]]


def enumerate_rows(
    option_lists: Sequence[Sequence[Configuration]],
    limit: Optional[int] = None,
    prune_dominated: bool = False,
    order: Union[str, OrderFn, None] = None,
    own_choice: Optional[Mapping[ComponentSpec, int]] = None,
) -> List[Row]:
    """The S1 cross product as a materialized block of rows.

    Exactly the combinations :func:`iter_compatible` streams -- same
    order transform, same conflict pruning at the same depth, same
    ``limit`` semantics (enumeration aborts at the cap, so the cap
    bounds both the work and this list's memory) -- but built for the
    batched costing path: instead of a reusable merged choice *map*,
    each row carries the merged choice items already in canonical
    sorted order, ready for :func:`make_configuration_parts`.  The sort
    never compares two specs: every spec of the node gets a small
    integer *rank* in sort-key order (equal sort keys imply equal
    specs, so the rank map is order-preserving and injective), each
    option's choices are decorated once with a packed
    ``(rank, depth, position)`` integer key, and a row's items are one
    integer sort over the per-depth runs at emit time.  S1 consistency
    bookkeeping runs over the same ranks, so the hot loop hashes small
    ints, not specs.  Only rows that actually contain a duplicated spec
    pay a dedup pass.

    ``own_choice`` folds the caller's own (spec -> impl) entries into
    every row the way the scalar evaluator does after the merge: a row
    whose children pin an own spec to a different impl is an S1
    conflict -- it still counts against ``limit`` (the scalar path
    counts it before its conflict check too) but its choice items are
    ``None`` so the caller skips costing it.
    """
    if limit is not None and limit <= 0:
        return []
    count = len(option_lists)
    lists, universes, shared = _prepare_lists(
        option_lists, limit, prune_dominated, order)

    own_items: Tuple[Choice, ...] = ()
    if own_choice:
        own_items = tuple(
            sorted(own_choice.items(), key=lambda kv: kv[0].sort_key))
    rows: List[Row] = []
    if count == 0:
        # No sibling lists: the scalar walk yields exactly one empty
        # combination, whose choices are the caller's own entries.
        rows.append(((), own_items))
        return rows

    # The merge map tracks every spec that can appear twice in one row:
    # the shared set, plus own specs present in some child universe (the
    # scalar evaluator catches own-vs-child conflicts against its full
    # merged map).  Widening beyond ``shared`` changes no sibling
    # pruning -- a spec private to one list can never conflict between
    # siblings -- it only makes the own-choice check exact.
    tracked = shared
    if own_items:
        extra = {spec for spec, _ in own_items
                 if any(spec in universe for universe in universes)}
        extra -= shared
        if extra:
            tracked = shared | extra
    checked = [bool(universe & tracked) for universe in universes]

    # Integer spec ranks in sort-key order.  Each entry's packed key is
    # (rank, depth, j) with strides wide enough that integer comparison
    # equals lexicographic tuple comparison; keys are unique within a
    # row (one config per depth, j indexes its choices), so the emit
    # sort never falls through to comparing the payload.
    all_specs: set = set()
    for universe in universes:
        all_specs |= universe
    all_specs.update(spec for spec, _ in own_items)
    rank_of = {
        spec: rank
        for rank, spec in enumerate(
            sorted(all_specs, key=lambda s: s.sort_key))
    }
    # Identity fast path for rank lookups: specs are interned by
    # :func:`make_spec`, so a config's choice spec is almost always
    # *the* object sitting in the universe sets; an int-keyed get then
    # skips the (Python-level) spec hash.  Equal-but-distinct spec
    # objects fall back to the value-keyed map, so nothing relies on
    # the interning.
    rank_by_id = {id(spec): rank for spec, rank in rank_of.items()}
    rank_by_id_get = rank_by_id.get
    tracked_ranks = {rank_of[spec] for spec in tracked}
    j_stride = len(own_items) + 1
    for options in lists:
        for config in options:
            width = len(config.choices) + 1
            if width > j_stride:
                j_stride = width
    depth_stride = count + 2
    rank_stride = depth_stride * j_stride

    own_run = [
        (rank_of[spec] * rank_stride + count * j_stride + j, (spec, impl))
        for j, (spec, impl) in enumerate(own_items)
    ]
    own_rank_items = [(rank_of[spec], impl) for spec, impl in own_items]

    # Per-depth memo tables parallel to the option lists, filled
    # lazily: position indexing keeps the innermost loops free of both
    # id() calls and dictionary probes.
    run_tables: List[list] = [[None] * len(options) for options in lists]
    tracked_tables: List[list] = [[None] * len(options) for options in lists]

    merged: Dict[int, int] = {}
    merged_get = merged.get
    chosen: List[Optional[Configuration]] = [None] * count
    #: The flat stack of the current prefix's decorated entries; walk
    #: extends it per depth and truncates on unwind, so emit only pays
    #: one sorted copy per row.
    entries: list = []
    rows_append = rows.append
    done = False
    limit_n = -1 if limit is None else limit

    def emit(multiplicity: int) -> None:
        nonlocal done
        duplicates = multiplicity - len(merged)
        if own_rank_items:
            for rank, impl in own_rank_items:
                existing = merged_get(rank)
                if existing is not None:
                    if existing != impl:
                        rows_append((tuple(chosen), None))
                        if len(rows) == limit_n:
                            done = True
                        return
                    duplicates += 1
            ent = entries + own_run
            ent.sort()
        else:
            ent = sorted(entries)
        if duplicates:
            # Equal specs share one rank (the rank map is value-keyed),
            # so duplicates are adjacent after the sort and detected by
            # integer division alone; keep the first occurrence (lowest
            # depth -- the scalar dict's insertion position, and the
            # impls of duplicates are equal by construction).
            deduped = []
            prev_rank = -1
            for entry in ent:
                rank = entry[0] // rank_stride
                if rank == prev_rank:
                    continue
                prev_rank = rank
                deduped.append(entry)
            ent = deduped
        rows_append(
            (tuple(chosen), ChoiceTuple([entry[1] for entry in ent])))
        if len(rows) == limit_n:
            done = True

    def decorated_run(table: list, index: int,
                      config: Configuration, depth_off: int) -> list:
        run: list = []
        append = run.append
        j = depth_off
        for choice in config.choices:
            rank = rank_by_id_get(id(choice[0]))
            if rank is None:
                rank = rank_of[choice[0]]
            append((rank * rank_stride + j, choice))
            j += 1
        table[index] = run
        return run

    def tracked_items(table: list, index: int,
                      config: Configuration) -> list:
        items: list = []
        append = items.append
        for spec, impl in config.choices:
            rank = rank_by_id_get(id(spec))
            if rank is None:
                rank = rank_of[spec]
            if rank in tracked_ranks:
                append((rank, impl))
        table[index] = items
        return items

    def walk(depth: int, multiplicity: int) -> None:
        options = lists[depth]
        last = depth + 1 == count
        run_table = run_tables[depth]
        depth_off = depth * j_stride
        base = len(entries)
        extend = entries.extend
        if not checked[depth]:
            # No spec of this list appears anywhere else: conflicts are
            # impossible, so no merge bookkeeping at all.
            index = 0
            for config in options:
                run = run_table[index]
                if run is None:
                    run = decorated_run(run_table, index, config, depth_off)
                index += 1
                chosen[depth] = config
                extend(run)
                if last:
                    emit(multiplicity)
                else:
                    walk(depth + 1, multiplicity)
                del entries[base:]
                if done:
                    return
        else:
            tracked_table = tracked_tables[depth]
            index = 0
            for config in options:
                items = tracked_table[index]
                if items is None:
                    items = tracked_items(tracked_table, index, config)
                consistent = True
                to_add: List[int] = []
                for rank, impl in items:
                    existing = merged_get(rank)
                    if existing is None:
                        to_add.append(rank)
                    elif existing != impl:
                        consistent = False
                        break
                if consistent:
                    for rank, impl in items:
                        merged[rank] = impl
                    run = run_table[index]
                    if run is None:
                        run = decorated_run(
                            run_table, index, config, depth_off)
                    chosen[depth] = config
                    extend(run)
                    if last:
                        emit(multiplicity + len(items))
                    else:
                        walk(depth + 1, multiplicity + len(items))
                    del entries[base:]
                    for rank in to_add:
                        del merged[rank]
                index += 1
                if done:
                    return

    walk(0, 0)
    return rows
