"""Configurations: costed, globally-consistent implementation choices.

DTAS's first search-control principle (S1) says a design may not
contain "two or more modules with the same component specification that
are not instances of the same component implementation".  We implement
that exactly: a :class:`Configuration` carries the full mapping
*specification -> chosen implementation* for the subtree it describes,
and combining configurations from sibling modules rejects conflicting
choices.

A configuration also carries its cost: total area (equivalent NAND
gates) and the full input-to-output pin delay matrix (nanoseconds), so
parents can run structural timing over their decomposition netlists.
The scalar worst-delay summary is computed once at construction (it is
the sort key of every filter pass), and per-spec choice lookup is
backed by a lazily built dictionary so materializing a design tree is
linear rather than quadratic in tree size.

Combining sibling options is *streaming*: :func:`iter_compatible`
enumerates the S1-consistent cross product lazily, so a combination cap
bounds the work performed, not just the length of a list that was
already fully materialized.  Sibling specification sets are analysed up
front: an option list whose specs appear in no other list can never
conflict, so its choices are merged with plain dictionary writes and no
comparisons at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.specs import ComponentSpec

Choice = Tuple[ComponentSpec, int]  # (specification, implementation index)
DelayItems = Tuple[Tuple[Tuple[str, str], float], ...]


@dataclass(frozen=True)
class Configuration:
    """One consistent, costed implementation choice for a spec subtree."""

    area: float
    delays: DelayItems
    choices: Tuple[Choice, ...]
    #: Scalar summary (worst pin-to-pin delay), precomputed because it
    #: is read on every filter sort key and dominance comparison.  It is
    #: derived from ``delays``, so it is excluded from equality/hash.
    delay: float = field(default=-1.0, compare=False)

    def __post_init__(self) -> None:
        if self.delay < 0.0:
            object.__setattr__(
                self, "delay", max((d for _, d in self.delays), default=0.0)
            )

    def delay_matrix(self) -> Dict[Tuple[str, str], float]:
        return dict(self.delays)

    @property
    def arc_keys(self) -> Tuple[Tuple[str, str], ...]:
        """The (input, output) pairs of the delay matrix, in ``delays``
        order -- the arc signature used by compiled timing kernels."""
        cached = self.__dict__.get("_arc_keys")
        if cached is None:
            cached = tuple(k for k, _ in self.delays)
            object.__setattr__(self, "_arc_keys", cached)
        return cached

    @property
    def delay_values(self) -> Tuple[float, ...]:
        """The delay weights, parallel to :attr:`arc_keys`."""
        cached = self.__dict__.get("_delay_values")
        if cached is None:
            cached = tuple(v for _, v in self.delays)
            object.__setattr__(self, "_delay_values", cached)
        return cached

    def choice_map(self) -> Dict[ComponentSpec, int]:
        return dict(self.choices)

    def chosen_impl(self, spec: ComponentSpec) -> Optional[int]:
        table = self.__dict__.get("_impl_by_spec")
        if table is None:
            table = dict(self.choices)
            object.__setattr__(self, "_impl_by_spec", table)
        return table.get(spec)

    def describe(self) -> str:
        return f"area={self.area:.0f} gates, delay={self.delay:.1f} ns"

    def __getstate__(self):
        """Drop lazily built caches from pickles; they are derived and
        cheap to rebuild, and ``_impl_by_spec`` keys specs whose hashes
        are process-specific."""
        state = dict(self.__dict__)
        for key in ("_arc_keys", "_delay_values", "_impl_by_spec"):
            state.pop(key, None)
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)


def make_configuration(
    area: float,
    delays: Mapping[Tuple[str, str], float],
    choices: Mapping[ComponentSpec, int],
) -> Configuration:
    """Normalized constructor (sorted, hashable tuples)."""
    delay_items = tuple(sorted(delays.items()))
    choice_items = tuple(sorted(choices.items(), key=lambda kv: kv[0].sort_key))
    return Configuration(float(area), delay_items, choice_items)


def merge_choices(
    parts: Iterable[Mapping[ComponentSpec, int]]
) -> Optional[Dict[ComponentSpec, int]]:
    """Merge choice maps from sibling modules.

    Returns ``None`` when two parts pick different implementations for
    the same specification -- the combination is rejected, enforcing S1.
    """
    merged: Dict[ComponentSpec, int] = {}
    for part in parts:
        for spec, impl in part.items():
            existing = merged.get(spec)
            if existing is None:
                merged[spec] = impl
            elif existing != impl:
                return None
    return merged


def prune_dominated_options(
    options: Sequence[Configuration],
    shared_specs: Optional[set] = None,
) -> List[Configuration]:
    """Drop options that are *interchangeable-for-the-worse*.

    Two options are interchangeable for S1 composition when their
    choices agree on every spec in ``shared_specs`` -- the specs that
    can also appear in sibling option lists; choices on specs private
    to this list can never cause a conflict elsewhere.  Among
    interchangeable options, one that is at least as good in area and
    in every delay arc (same arc-key set) and strictly better somewhere
    dominates: every combination the worse option could contribute, the
    better one contributes at pointwise-lower cost.

    With ``shared_specs=None`` the *full* choice map must agree -- the
    conservative form used directly in tests.  Opt-in because a
    dominated combination can still tie the dominating one on the
    scalar (area, worst-delay) pair, so downstream filter tie-breaking
    may keep a different (cost-equivalent) representative than
    unpruned evaluation.
    """

    def footprint(option: Configuration) -> Tuple[Choice, ...]:
        if shared_specs is None:
            return option.choices
        return tuple(c for c in option.choices if c[0] in shared_specs)

    kept: List[Configuration] = []
    kept_footprints: List[Tuple[Choice, ...]] = []
    for option in options:
        own_footprint = footprint(option)
        dominated = False
        for other, other_footprint in zip(kept, kept_footprints):
            if other_footprint != own_footprint:
                continue
            if other.arc_keys != option.arc_keys:
                continue
            if other.area > option.area:
                continue
            values, other_values = option.delay_values, other.delay_values
            if any(o > v for o, v in zip(other_values, values)):
                continue
            if other.area < option.area or any(
                o < v for o, v in zip(other_values, values)
            ):
                dominated = True
                break
        if not dominated:
            kept.append(option)
            kept_footprints.append(own_footprint)
    return kept


def iter_compatible(
    option_lists: Sequence[Sequence[Configuration]],
    limit: Optional[int] = None,
    prune_dominated: bool = False,
) -> Iterator[Tuple[Tuple[Configuration, ...], Dict[ComponentSpec, int]]]:
    """Stream the S1-consistent cross product of per-spec options.

    Yields ``(chosen configurations, merged choice map)`` in exactly
    the order the nested-loop cross product would produce them, pruning
    conflicting prefixes as early as possible.  With ``limit``, the
    enumeration *stops* after that many combinations -- bounding the
    work done, not just the output returned.

    The yielded choice map is reused between iterations for speed; copy
    it if it must outlive the loop body (:func:`combine_compatible`
    does exactly that).
    """
    if limit is not None and limit <= 0:
        return
    count = len(option_lists)

    # Which option lists can conflict at all?  A spec can collide only
    # when it appears in the choice universes of two different lists.
    universes: List[set] = []
    for options in option_lists:
        universe = set()
        for config in options:
            for spec, _ in config.choices:
                universe.add(spec)
        universes.append(universe)
    shared: set = set()
    seen: set = set()
    for universe in universes:
        shared |= universe & seen
        seen |= universe
    checked = [bool(universe & shared) for universe in universes]

    lists: List[Sequence[Configuration]] = (
        [prune_dominated_options(options, shared) for options in option_lists]
        if prune_dominated
        else list(option_lists)
    )

    merged: Dict[ComponentSpec, int] = {}
    chosen: List[Optional[Configuration]] = [None] * count
    emitted = 0

    def walk(depth: int) -> Iterator[
        Tuple[Tuple[Configuration, ...], Dict[ComponentSpec, int]]
    ]:
        nonlocal emitted
        if depth == count:
            yield tuple(chosen), merged
            emitted += 1
            return
        options = lists[depth]
        if not checked[depth]:
            # No spec of this list appears anywhere else: conflicts are
            # impossible, so skip the compare-and-merge entirely.
            for config in options:
                chosen[depth] = config
                choices = config.choices
                for spec, impl in choices:
                    merged[spec] = impl
                yield from walk(depth + 1)
                for spec, _ in choices:
                    del merged[spec]
                if limit is not None and emitted >= limit:
                    return
        else:
            for config in options:
                chosen[depth] = config
                added: List[ComponentSpec] = []
                consistent = True
                for spec, impl in config.choices:
                    existing = merged.get(spec)
                    if existing is None:
                        merged[spec] = impl
                        added.append(spec)
                    elif existing != impl:
                        consistent = False
                        break
                if consistent:
                    yield from walk(depth + 1)
                for spec in added:
                    del merged[spec]
                if limit is not None and emitted >= limit:
                    return

    yield from walk(0)


def combine_compatible(
    option_lists: Sequence[Sequence[Configuration]],
    limit: Optional[int] = None,
) -> List[Tuple[Tuple[Configuration, ...], Dict[ComponentSpec, int]]]:
    """Materialized form of :func:`iter_compatible` (kept for callers
    and tests that want the whole list; each result owns its map)."""
    return [
        (chosen, dict(merged))
        for chosen, merged in iter_compatible(option_lists, limit=limit)
    ]
