"""Configurations: costed, globally-consistent implementation choices.

DTAS's first search-control principle (S1) says a design may not
contain "two or more modules with the same component specification that
are not instances of the same component implementation".  We implement
that exactly: a :class:`Configuration` carries the full mapping
*specification -> chosen implementation* for the subtree it describes,
and combining configurations from sibling modules rejects conflicting
choices.

A configuration also carries its cost: total area (equivalent NAND
gates) and the full input-to-output pin delay matrix (nanoseconds), so
parents can run structural timing over their decomposition netlists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.core.specs import ComponentSpec

Choice = Tuple[ComponentSpec, int]  # (specification, implementation index)
DelayItems = Tuple[Tuple[Tuple[str, str], float], ...]


def _spec_key(spec: ComponentSpec) -> str:
    return f"{spec.ctype}|{spec.width}|{spec.attrs!r}"


@dataclass(frozen=True)
class Configuration:
    """One consistent, costed implementation choice for a spec subtree."""

    area: float
    delays: DelayItems
    choices: Tuple[Choice, ...]

    @property
    def delay(self) -> float:
        """Scalar summary: the worst pin-to-pin delay."""
        return max((d for _, d in self.delays), default=0.0)

    def delay_matrix(self) -> Dict[Tuple[str, str], float]:
        return dict(self.delays)

    def choice_map(self) -> Dict[ComponentSpec, int]:
        return dict(self.choices)

    def chosen_impl(self, spec: ComponentSpec) -> Optional[int]:
        for s, impl in self.choices:
            if s == spec:
                return impl
        return None

    def describe(self) -> str:
        return f"area={self.area:.0f} gates, delay={self.delay:.1f} ns"


def make_configuration(
    area: float,
    delays: Mapping[Tuple[str, str], float],
    choices: Mapping[ComponentSpec, int],
) -> Configuration:
    """Normalized constructor (sorted, hashable tuples)."""
    delay_items = tuple(sorted(delays.items()))
    choice_items = tuple(sorted(choices.items(), key=lambda kv: _spec_key(kv[0])))
    return Configuration(float(area), delay_items, choice_items)


def merge_choices(
    parts: Iterable[Mapping[ComponentSpec, int]]
) -> Optional[Dict[ComponentSpec, int]]:
    """Merge choice maps from sibling modules.

    Returns ``None`` when two parts pick different implementations for
    the same specification -- the combination is rejected, enforcing S1.
    """
    merged: Dict[ComponentSpec, int] = {}
    for part in parts:
        for spec, impl in part.items():
            existing = merged.get(spec)
            if existing is None:
                merged[spec] = impl
            elif existing != impl:
                return None
    return merged


def combine_compatible(
    option_lists: List[List[Configuration]],
) -> List[Tuple[Tuple[Configuration, ...], Dict[ComponentSpec, int]]]:
    """Cross product of per-spec configuration options, keeping only
    S1-consistent combinations.

    Returns a list of (chosen configurations, merged choice map).  The
    cross product is walked incrementally so conflicting prefixes are
    pruned early.
    """
    results: List[Tuple[Tuple[Configuration, ...], Dict[ComponentSpec, int]]] = [
        ((), {})
    ]
    for options in option_lists:
        extended = []
        for chosen, merged in results:
            for option in options:
                combined = merge_choices([merged, option.choice_map()])
                if combined is None:
                    continue
                extended.append((chosen + (option,), combined))
        results = extended
        if not results:
            break
    return results
