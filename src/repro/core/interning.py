"""Process-wide configuration interning.

Evaluation rebuilds equal :class:`~repro.core.configs.Configuration`
objects constantly: every node that reaches the same (area, delay
matrix, choice signature) allocates a fresh object, and the keep-all
ablation multiplies that by the unfiltered cross product.  The intern
table collapses them: :func:`~repro.core.configs.make_configuration`
asks the table for the canonical instance, so

- equal configurations are *the same object* process-wide, which makes
  equality an O(1) identity check between interned instances (see
  ``Configuration.__eq__``) and lets the per-object lazy caches
  (``arc_keys``, ``delay_values``, ``chosen_impl`` tables, split choice
  tuples) be computed once and shared by every user;
- each configuration carries a stable ``interned_id`` -- a small int
  the streaming S1 combiner uses to memoize per-configuration work
  within one enumeration;
- pickles round-trip through the table
  (``Configuration.__reduce__``), so results shipped back from
  multiprocessing workers land as canonical parent-process instances.

The table holds its entries *weakly* by value: when the last outside
reference to a configuration dies, its entry (and key tuple) is
released, so a retired workload does not pin its whole design space in
memory.  Interning is keyed purely on value -- (area, delays, choices)
-- and never changes what a configuration *is*, only how many copies of
it exist, which is why the parallel/interned engine stays bit-identical
to the sequential one.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Optional, TYPE_CHECKING
from weakref import WeakValueDictionary

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from repro.core.configs import Configuration


class InternTable:
    """A thread-safe value -> canonical-instance table.

    Thread safety matters: the parallel evaluator's thread backend
    builds configurations concurrently, and all of them funnel through
    this table.
    """

    def __init__(self) -> None:
        self._table: "WeakValueDictionary" = WeakValueDictionary()
        # Fast-path lookup: WeakValueDictionary.get is a Python-level
        # method; reading its underlying ``data`` dict of key -> weak
        # reference directly halves the per-intern overhead on the
        # batched evaluator's hot path.  Falls back cleanly if the
        # attribute ever disappears.
        self._data = getattr(self._table, "data", None)
        self._lock = threading.Lock()
        self._next_id = 0
        self.hits = 0
        self.misses = 0
        #: Configurations that entered through :meth:`revive_parts` --
        #: i.e. loaded from outside the process (pickles shipped back
        #: from workers, result-store payloads) rather than computed.
        self.revived = 0

    # ------------------------------------------------------------------
    def intern_parts(self, area, delays, choices, cls,
                     delay: float = -1.0) -> "Configuration":
        """Canonical configuration for already-normalized parts.

        On a hit no new object is allocated at all; on a miss the
        configuration is constructed, tagged with the next intern id,
        and becomes the canonical instance.  ``delay`` optionally passes
        a precomputed worst-delay scalar (the batched evaluator already
        holds it), skipping the derivation in ``__post_init__``; it must
        equal the derived value, which equality/hash ignore anyway.
        """
        key = (area, delays, choices)
        with self._lock:
            if self._data is not None:
                ref = self._data.get(key)
                existing = ref() if ref is not None else None
            else:
                existing = self._table.get(key)
            if existing is not None:
                self.hits += 1
                return existing
            config = cls(area, delays, choices, delay)
            object.__setattr__(config, "_intern_id", self._next_id)
            self._next_id += 1
            self._table[key] = config
            self.misses += 1
            return config

    def revive_parts(self, area, delays, choices, cls) -> "Configuration":
        """Re-intern a configuration that was serialized in another
        process (or another run of this one): pickle payloads from
        multiprocessing workers and result-store loads both land here.

        Exactly :meth:`intern_parts` -- the loaded value collapses onto
        the canonical instance, identical (``is``) to a freshly
        computed equal configuration -- plus a counter, so serving
        metrics can report how much work arrived warm.  The increment
        takes the table lock like every other counter: revivals land
        concurrently from serve executor threads and worker pickles."""
        with self._lock:
            self.revived += 1
        return self.intern_parts(area, delays, choices, cls)

    def intern(self, config: "Configuration") -> "Configuration":
        """Canonical instance for an existing configuration (used when
        the object was built outside :func:`make_configuration`, e.g.
        by unpickling)."""
        if config.interned_id is not None:
            return config
        key = (config.area, config.delays, config.choices)
        with self._lock:
            existing = self._table.get(key)
            if existing is not None:
                self.hits += 1
                return existing
            object.__setattr__(config, "_intern_id", self._next_id)
            self._next_id += 1
            self._table[key] = config
            self.misses += 1
            return config

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._table)

    def stats(self) -> Dict[str, int]:
        return {"size": len(self._table), "hits": self.hits,
                "misses": self.misses, "revived": self.revived}

    def clear(self) -> None:
        """Drop every entry (tests; live configurations stay valid but
        newly built equal ones will no longer be identical to them)."""
        with self._lock:
            self._table.clear()
            self.hits = 0
            self.misses = 0
            self.revived = 0

    def _reinit_lock(self) -> None:
        """Replace the lock with a fresh one (post-fork hook: a fork
        can snapshot the lock in the held state if another thread was
        interning at that instant; the child has no owner thread to
        release it, so every worker would deadlock on its first
        ``make_configuration``)."""
        self._lock = threading.Lock()


#: The process-wide table every :func:`make_configuration` goes through.
CONFIGURATIONS = InternTable()

if hasattr(os, "register_at_fork"):  # POSIX: keep forked workers safe
    os.register_at_fork(after_in_child=CONFIGURATIONS._reinit_lock)


def intern_configuration(config: "Configuration") -> "Configuration":
    """Return the canonical interned instance equal to ``config``."""
    return CONFIGURATIONS.intern(config)


def intern_stats() -> Dict[str, int]:
    """Hit/miss/size counters of the process-wide table."""
    return CONFIGURATIONS.stats()
