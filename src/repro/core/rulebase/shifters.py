"""Decomposition rules for shifters and barrel shifters.

A shift by a constant amount is pure wiring, so a single-position
shifter is just a mux over rewired operands, and a barrel shifter is a
chain of log2(w) such stages (or, as an alternative design point, a
flat per-bit mux matrix)."""

from __future__ import annotations

from typing import List, Tuple

from repro.core.rules import DecompBuilder, Rule, RuleContext
from repro.core.specs import ComponentSpec, gate_spec, make_spec, mux_spec, sel_width
from repro.netlist.nets import Concat, Const, Endpoint


def _shifted_endpoint(b: DecompBuilder, source, op: str, amount: int,
                      width: int, fill: Endpoint) -> Endpoint:
    """Endpoint equal to ``source`` shifted by ``amount`` (wiring only).

    ``source`` must be a whole-net endpoint of ``width`` bits; ``fill``
    is a 1-bit endpoint replicated into the vacated positions (ignored
    for rotates; the sign bit is used for ASR).
    """
    if amount == 0:
        return source.ref()
    amount = min(amount, width)
    if op == "SHL":
        fills = tuple([fill] * amount)
        if amount == width:
            return Concat(fills)
        return Concat(fills + (source[0:width - amount],))
    if op == "SHR":
        fills = tuple([fill] * amount)
        if amount == width:
            return Concat(fills)
        return Concat((source[amount:width],) + fills)
    if op == "ASR":
        sign = source[width - 1]
        fills = tuple([sign] * amount)
        if amount == width:
            return Concat(fills)
        return Concat((source[amount:width],) + fills)
    if op == "ROL":
        amount %= width
        if amount == 0:
            return source.ref()
        return Concat((source[width - amount:width], source[0:width - amount]))
    if op == "ROR":
        amount %= width
        if amount == 0:
            return source.ref()
        return Concat((source[amount:width], source[0:amount]))
    raise ValueError(f"unknown shift op {op!r}")


def shifter_mux(spec: ComponentSpec, context: RuleContext):
    """SHIFTER (shift-by-one, op select) -> one mux over rewired
    operands, the serial input filling the vacated bit."""
    width = spec.width
    ops = spec.ops or ("SHL", "SHR")
    b = DecompBuilder(spec, f"shifter{width}_mux")
    si = b.port("SI").ref()
    variants = [
        _shifted_endpoint(b, b.port("A"), op, 1, width, si) for op in ops
    ]
    if len(ops) == 1:
        b.inst("buf", gate_spec("BUF", width=width), I0=variants[0], O=b.port("O"))
    else:
        mux = b.inst("m", mux_spec(len(ops), width),
                     S=b.port("S"), O=b.port("O"))
        for i, variant in enumerate(variants):
            mux.connect(f"I{i}", variant)
    yield b.done()


def barrel_stages(spec: ComponentSpec, context: RuleContext):
    """Single-op BARREL_SHIFTER(w) -> log2(w) mux stages, stage i
    shifting by 2^i when SH[i] is set."""
    width = spec.width
    ops = spec.ops or ("SHL",)
    if len(ops) != 1:
        return
    op = ops[0]
    stages = sel_width(width)
    b = DecompBuilder(spec, f"barrel{width}_{op.lower()}_stages")
    current = b.port("A")
    for i in range(stages):
        amount = 1 << i
        nxt = b.net(f"st{i}", width) if i < stages - 1 else b.port("O")
        shifted = _shifted_endpoint(b, current, op, amount, width, Const(0, 1))
        mux = b.inst(f"m{i}", mux_spec(2, width), S=b.port("SH")[i], O=nxt)
        mux.connect("I0", current.ref())
        mux.connect("I1", shifted)
        current = nxt
    yield b.done()


def barrel_flat(spec: ComponentSpec, context: RuleContext):
    """Single-op BARREL_SHIFTER(w) -> w-input mux per shift amount (a
    flat matrix: one mux level, heavy wiring -- the fast alternative)."""
    width = spec.width
    ops = spec.ops or ("SHL",)
    if len(ops) != 1 or width < 2:
        return
    op = ops[0]
    b = DecompBuilder(spec, f"barrel{width}_{op.lower()}_flat")
    amounts = 1 << sel_width(width)
    mux = b.inst("m", mux_spec(amounts, width), S=b.port("SH"), O=b.port("O"))
    for amount in range(amounts):
        endpoint = _shifted_endpoint(b, b.port("A"), op, amount, width, Const(0, 1))
        mux.connect(f"I{amount}", endpoint)
    yield b.done()


def barrel_multi_op(spec: ComponentSpec, context: RuleContext):
    """Multi-op BARREL_SHIFTER -> one single-op barrel per operation,
    resolved by an output mux."""
    width = spec.width
    ops = spec.ops
    if len(ops) < 2:
        return
    b = DecompBuilder(spec, f"barrel{width}_multi")
    outs = []
    for op in ops:
        unit_out = b.net(f"o_{op.lower()}", width)
        b.inst(f"u_{op.lower()}", make_spec("BARREL_SHIFTER", width, ops=(op,)),
               A=b.port("A"), SH=b.port("SH"), O=unit_out)
        outs.append(unit_out)
    mux = b.inst("m", mux_spec(len(ops), width), S=b.port("S"), O=b.port("O"))
    for i, out in enumerate(outs):
        mux.connect(f"I{i}", out.ref())
    yield b.done()


def rules() -> List[Rule]:
    return [
        Rule("shifter-mux", "SHIFTER", shifter_mux),
        Rule("barrel-stages", "BARREL_SHIFTER", barrel_stages,
             guard=lambda s: len(s.ops or ("SHL",)) == 1),
        Rule("barrel-flat", "BARREL_SHIFTER", barrel_flat,
             guard=lambda s: len(s.ops or ("SHL",)) == 1 and 2 <= s.width <= 16),
        Rule("barrel-multi-op", "BARREL_SHIFTER", barrel_multi_op,
             guard=lambda s: len(s.ops) >= 2),
    ]
