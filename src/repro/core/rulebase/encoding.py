"""Decomposition rules for binary/BCD decoders and priority encoders.

BCD variants fall out of the generic rules: a BCD decoder is a 4-bit
decoder with ``n_outputs=10`` (the tree rule instantiates only the low
decoders it needs and leaves partial outputs unused), and a BCD encoder
is a 10-input encoder (padded up to 16 with tied-low inputs).
"""

from __future__ import annotations

from typing import List

from repro.core.rules import DecompBuilder, Rule, RuleContext
from repro.core.rulebase.helpers import invert, is_pow2, next_pow2, wide_gate
from repro.core.specs import ComponentSpec, gate_spec, make_spec
from repro.netlist.nets import Concat, Const


def _n_outputs(spec: ComponentSpec) -> int:
    return spec.get("n_outputs", 1 << spec.width)


def _n_inputs(spec: ComponentSpec) -> int:
    return spec.get("n_inputs", 1 << spec.width)


# ---------------------------------------------------------------------------
# Decoders
# ---------------------------------------------------------------------------

def decoder_minterms(spec: ComponentSpec, context: RuleContext):
    """DECODER -> one AND gate per output over the (inverted) inputs.

    The two-level form: fast and fat.  Enable, when present, feeds every
    minterm gate.
    """
    width, n_out = spec.width, _n_outputs(spec)
    enable = spec.get("enable", False)
    b = DecompBuilder(spec, f"dec{width}_minterms")
    true_bits = [b.port("I")[i] for i in range(width)]
    comp_bits = [invert(b, f"inv{i}", b.port("I")[i], 1).ref() for i in range(width)]
    for code in range(n_out):
        inputs = [
            true_bits[i] if (code >> i) & 1 else comp_bits[i] for i in range(width)
        ]
        if enable:
            inputs.append(b.port("EN").ref())
        out = wide_gate(b, f"min{code}", "AND", inputs, 1)
        b.inst(f"buf{code}", gate_spec("BUF", width=1),
               I0=out, O=b.port("O")[code])
    yield b.done()


def decoder_tree(spec: ComponentSpec, context: RuleContext):
    """DECODER(w) -> high DECODER(hi) enabling a bank of low
    DECODER(lo, enable) blocks (the classic expansion)."""
    width, n_out = spec.width, _n_outputs(spec)
    hi = width // 2
    lo = width - hi
    b = DecompBuilder(spec, f"dec{width}_tree")
    enable = spec.get("enable", False)

    hi_spec = make_spec("DECODER", hi, enable=enable or None)
    hi_out = b.net("hi_out", 1 << hi)
    hi_pins = {"I": b.port("I")[lo:width], "O": hi_out}
    if enable:
        hi_pins["EN"] = b.port("EN")
    b.inst("d_hi", hi_spec, **hi_pins)

    lo_spec = make_spec("DECODER", lo, enable=True)
    lo_size = 1 << lo
    banks = (n_out + lo_size - 1) // lo_size
    for bank in range(banks):
        used = min(lo_size, n_out - bank * lo_size)
        bank_out = b.net(f"bank{bank}", lo_size)
        b.inst(
            f"d_lo{bank}", lo_spec,
            I=b.port("I")[0:lo], EN=hi_out[bank], O=bank_out,
        )
        for j in range(used):
            b.inst(f"b{bank}_{j}", gate_spec("BUF", width=1),
                   I0=bank_out[j], O=b.port("O")[bank * lo_size + j])
    yield b.done()


def decoder_1bit(spec: ComponentSpec, context: RuleContext):
    """DECODER(1): O0 = ~I (AND enable), O1 = I (AND enable)."""
    n_out = _n_outputs(spec)
    enable = spec.get("enable", False)
    b = DecompBuilder(spec, "dec1_gates")
    ni = invert(b, "inv", b.port("I").ref(), 1)
    lines = [ni.ref(), b.port("I").ref()]
    for code in range(min(n_out, 2)):
        if enable:
            out = wide_gate(b, f"en{code}", "AND", [lines[code], b.port("EN").ref()], 1)
            b.inst(f"buf{code}", gate_spec("BUF", width=1), I0=out, O=b.port("O")[code])
        else:
            b.inst(f"buf{code}", gate_spec("BUF", width=1),
                   I0=lines[code], O=b.port("O")[code])
    yield b.done()


# ---------------------------------------------------------------------------
# Priority encoders
# ---------------------------------------------------------------------------

def encoder_pad(spec: ComponentSpec, context: RuleContext):
    """ENCODER with a non-power-of-two input count -> padded encoder
    with the extra (higher-priority) inputs tied low."""
    width, n_in = spec.width, _n_inputs(spec)
    padded = next_pow2(n_in)
    b = DecompBuilder(spec, f"enc{n_in}_pad{padded}")
    inner = make_spec("ENCODER", width, n_inputs=padded,
                      valid=spec.get("valid", False) or None)
    pins = {
        "I": Concat((b.port("I").ref(), Const(0, padded - n_in))),
        "O": b.port("O"),
    }
    if spec.get("valid", False):
        pins["V"] = b.port("V")
    b.inst("e", inner, **pins)
    yield b.done()


def encoder_tree(spec: ComponentSpec, context: RuleContext):
    """ENCODER(2n) -> two half encoders with valid flags, the high half
    winning priority: O = Vhi ? (1, Ohi) : (0, Olo)."""
    width, n_in = spec.width, _n_inputs(spec)
    half = n_in // 2
    b = DecompBuilder(spec, f"enc{n_in}_tree")
    sub = make_spec("ENCODER", width - 1, n_inputs=half, valid=True)
    o_lo = b.net("o_lo", width - 1)
    o_hi = b.net("o_hi", width - 1)
    v_lo = b.net("v_lo", 1)
    v_hi = b.net("v_hi", 1)
    b.inst("e_lo", sub, I=b.port("I")[0:half], O=o_lo, V=v_lo)
    b.inst("e_hi", sub, I=b.port("I")[half:n_in], O=o_hi, V=v_hi)
    low_bits = b.net("low_bits", width - 1)
    b.inst("m", make_spec("MUX", width - 1, n_inputs=2),
           I0=o_lo, I1=o_hi, S=v_hi, O=low_bits)
    b.inst("btop", gate_spec("BUF", width=1), I0=v_hi, O=b.port("O")[width - 1])
    b.inst("blow", gate_spec("BUF", width=width - 1),
           I0=low_bits, O=b.port("O")[0:width - 1])
    if spec.get("valid", False):
        b.inst("gv", gate_spec("OR", 2, 1), I0=v_lo, I1=v_hi, O=b.port("V"))
    yield b.done()


def encoder_2to1(spec: ComponentSpec, context: RuleContext):
    """ENCODER(2 inputs): O[0] = I1 (priority), upper output bits 0,
    V = I0 | I1."""
    b = DecompBuilder(spec, "enc2_gates")
    b.inst("b0", gate_spec("BUF", width=1), I0=b.port("I")[1], O=b.port("O")[0])
    for i in range(1, spec.width):
        b.inst(f"z{i}", gate_spec("BUF", width=1),
               I0=Const(0, 1), O=b.port("O")[i])
    if spec.get("valid", False):
        b.inst("gv", gate_spec("OR", 2, 1),
               I0=b.port("I")[0], I1=b.port("I")[1], O=b.port("V"))
    yield b.done()


def rules() -> List[Rule]:
    return [
        Rule("decoder-minterms", "DECODER", decoder_minterms,
             guard=lambda s: 2 <= s.width <= 4),
        Rule("decoder-tree", "DECODER", decoder_tree,
             guard=lambda s: s.width >= 2),
        Rule("decoder-1bit", "DECODER", decoder_1bit,
             guard=lambda s: s.width == 1),
        Rule("encoder-pad", "ENCODER", encoder_pad,
             guard=lambda s: not is_pow2(_n_inputs(s))),
        Rule("encoder-tree", "ENCODER", encoder_tree,
             guard=lambda s: is_pow2(_n_inputs(s)) and _n_inputs(s) >= 4
             and s.width >= 2),
        Rule("encoder-2to1", "ENCODER", encoder_2to1,
             guard=lambda s: _n_inputs(s) == 2),
    ]
