"""Decomposition rules for bitwise logic gates.

Grounding strategy: any gate of any width and fan-in reduces, through
bit-slicing, input trees, and De Morgan rewrites, to the 2-input
NAND/NOR/inverter cells every data book carries.  Rewrites are oriented
*toward* NAND/NOR so the rewrite system terminates (the design-space
cycle guard catches anything a custom rule might reintroduce).
"""

from __future__ import annotations

from typing import List

from repro.core.rules import DecompBuilder, Rule, RuleContext
from repro.core.rulebase.helpers import wide_gate
from repro.core.specs import ComponentSpec, gate_spec
from repro.netlist.netlist import Netlist


def _kind(spec: ComponentSpec) -> str:
    return spec.get("kind")


def _n(spec: ComponentSpec) -> int:
    kind = _kind(spec)
    return spec.get("n_inputs", 1 if kind in ("NOT", "BUF") else 2)


def gate_bitslice(spec: ComponentSpec, context: RuleContext):
    """GATE<w> -> w parallel GATE<1> (bitwise slicing)."""
    width, kind, n = spec.width, _kind(spec), _n(spec)
    b = DecompBuilder(spec, f"{kind}{n}_slice{width}")
    unit = gate_spec(kind, n_inputs=n, width=1)
    for bit in range(width):
        pins = {f"I{i}": b.port(f"I{i}")[bit] for i in range(n)}
        pins["O"] = b.port("O")[bit]
        b.inst(f"g{bit}", unit, **pins)
    yield b.done()


def gate_input_tree(spec: ComponentSpec, context: RuleContext):
    """GATE with n > 2 inputs -> balanced tree of 2-input gates.

    For the inverting kinds the inversion is applied only at the root:
    NAND(n) = NAND2(AND(a), AND(b)), etc.
    """
    width, kind, n = spec.width, _kind(spec), _n(spec)
    base = {"NAND": "AND", "NOR": "OR", "XNOR": "XOR"}.get(kind, kind)
    root_kind = {"AND": "AND", "OR": "OR", "XOR": "XOR",
                 "NAND": "NAND", "NOR": "NOR", "XNOR": "XNOR"}[kind]
    b = DecompBuilder(spec, f"{kind}{n}_tree")
    half_a = (n + 1) // 2
    half_b = n - half_a

    def subtree(tag: str, lo: int, count: int):
        inputs = [b.port(f"I{lo + i}").ref() for i in range(count)]
        return wide_gate(b, f"t{tag}", base, inputs, width)

    left = subtree("l", 0, half_a)
    right = subtree("r", half_a, half_b)
    root = b.inst("root", gate_spec(root_kind, n_inputs=2, width=width),
                  O=b.port("O"))
    root.connect("I0", left.ref())
    root.connect("I1", right.ref())
    yield b.done()


def and_from_nand(spec: ComponentSpec, context: RuleContext):
    """AND2 = INV(NAND2)."""
    width = spec.width
    b = DecompBuilder(spec, "and_from_nand")
    mid = b.net("nand_o", width)
    b.inst("n0", gate_spec("NAND", 2, width), I0=b.port("I0"), I1=b.port("I1"), O=mid)
    b.inst("inv", gate_spec("NOT", width=width), I0=mid, O=b.port("O"))
    yield b.done()


def or_from_nor(spec: ComponentSpec, context: RuleContext):
    """OR2 = INV(NOR2)."""
    width = spec.width
    b = DecompBuilder(spec, "or_from_nor")
    mid = b.net("nor_o", width)
    b.inst("n0", gate_spec("NOR", 2, width), I0=b.port("I0"), I1=b.port("I1"), O=mid)
    b.inst("inv", gate_spec("NOT", width=width), I0=mid, O=b.port("O"))
    yield b.done()


def or_demorgan(spec: ComponentSpec, context: RuleContext):
    """OR2 = NAND2(INV, INV) -- for NAND-rich libraries."""
    width = spec.width
    b = DecompBuilder(spec, "or_demorgan")
    na = b.net("na", width)
    nb = b.net("nb", width)
    b.inst("ia", gate_spec("NOT", width=width), I0=b.port("I0"), O=na)
    b.inst("ib", gate_spec("NOT", width=width), I0=b.port("I1"), O=nb)
    b.inst("n0", gate_spec("NAND", 2, width), I0=na, I1=nb, O=b.port("O"))
    yield b.done()


def and_demorgan(spec: ComponentSpec, context: RuleContext):
    """AND2 = NOR2(INV, INV) -- for NOR-rich libraries."""
    width = spec.width
    b = DecompBuilder(spec, "and_demorgan")
    na = b.net("na", width)
    nb = b.net("nb", width)
    b.inst("ia", gate_spec("NOT", width=width), I0=b.port("I0"), O=na)
    b.inst("ib", gate_spec("NOT", width=width), I0=b.port("I1"), O=nb)
    b.inst("n0", gate_spec("NOR", 2, width), I0=na, I1=nb, O=b.port("O"))
    yield b.done()


def xnor_from_xor(spec: ComponentSpec, context: RuleContext):
    """XNOR2 = INV(XOR2)."""
    width = spec.width
    b = DecompBuilder(spec, "xnor_from_xor")
    mid = b.net("xor_o", width)
    b.inst("x0", gate_spec("XOR", 2, width), I0=b.port("I0"), I1=b.port("I1"), O=mid)
    b.inst("inv", gate_spec("NOT", width=width), I0=mid, O=b.port("O"))
    yield b.done()


def xor_from_nand(spec: ComponentSpec, context: RuleContext):
    """XOR2 from four NAND2 gates (the classic network)."""
    width = spec.width
    b = DecompBuilder(spec, "xor_from_nand")
    nand = lambda: gate_spec("NAND", 2, width)
    m = b.net("m", width)
    p = b.net("p", width)
    q = b.net("q", width)
    b.inst("n0", nand(), I0=b.port("I0"), I1=b.port("I1"), O=m)
    b.inst("n1", nand(), I0=b.port("I0"), I1=m, O=p)
    b.inst("n2", nand(), I0=b.port("I1"), I1=m, O=q)
    b.inst("n3", nand(), I0=p, I1=q, O=b.port("O"))
    yield b.done()


def not_from_nand(spec: ComponentSpec, context: RuleContext):
    """INV = NAND2 with both inputs tied together."""
    width = spec.width
    b = DecompBuilder(spec, "not_from_nand")
    b.inst("n0", gate_spec("NAND", 2, width),
           I0=b.port("I0"), I1=b.port("I0"), O=b.port("O"))
    yield b.done()


def nand_from_nor(spec: ComponentSpec, context: RuleContext):
    """NAND2 = INV(NOR2(INV, INV)) -- NOR(~a,~b) is a AND b, so one
    more inversion gives NAND.  Useful in NOR-only libraries."""
    width = spec.width
    b = DecompBuilder(spec, "nand_from_nor")
    na = b.net("na", width)
    nb = b.net("nb", width)
    conj = b.net("conj", width)
    b.inst("ia", gate_spec("NOT", width=width), I0=b.port("I0"), O=na)
    b.inst("ib", gate_spec("NOT", width=width), I0=b.port("I1"), O=nb)
    b.inst("n0", gate_spec("NOR", 2, width), I0=na, I1=nb, O=conj)
    b.inst("io", gate_spec("NOT", width=width), I0=conj, O=b.port("O"))
    yield b.done()


def buf_structural(spec: ComponentSpec, context: RuleContext):
    """BUF = INV(INV)."""
    width = spec.width
    b = DecompBuilder(spec, "buf_from_inv")
    mid = b.net("mid", width)
    b.inst("i0", gate_spec("NOT", width=width), I0=b.port("I0"), O=mid)
    b.inst("i1", gate_spec("NOT", width=width), I0=mid, O=b.port("O"))
    yield b.done()


def rules() -> List[Rule]:
    def g(kind, two_only=False, multi=False):
        def guard(spec: ComponentSpec, _kind=kind, _two=two_only, _multi=multi) -> bool:
            if spec.get("kind") != _kind:
                return False
            n = _n(spec)
            if _two and n != 2:
                return False
            if _multi and n <= 2:
                return False
            return True
        return guard

    wide = lambda spec: spec.width > 1
    unit = lambda spec: spec.width >= 1

    return [
        Rule("gate-bitslice", "GATE", gate_bitslice,
             guard=lambda s: s.width > 1,
             description="w-bit bitwise gate -> w single-bit gates"),
        Rule("gate-input-tree", "GATE", gate_input_tree,
             guard=lambda s: _n(s) > 2 and s.get("kind") != "NOT" and s.get("kind") != "BUF",
             description="n-input gate -> balanced 2-input tree"),
        Rule("and-from-nand", "GATE", and_from_nand, guard=g("AND", two_only=True)),
        Rule("or-from-nor", "GATE", or_from_nor, guard=g("OR", two_only=True)),
        Rule("or-demorgan", "GATE", or_demorgan, guard=g("OR", two_only=True)),
        Rule("and-demorgan", "GATE", and_demorgan, guard=g("AND", two_only=True)),
        Rule("xnor-from-xor", "GATE", xnor_from_xor, guard=g("XNOR", two_only=True)),
        Rule("xor-from-nand", "GATE", xor_from_nand, guard=g("XOR", two_only=True)),
        Rule("not-from-nand", "GATE", not_from_nand, guard=g("NOT")),
        Rule("nand-from-nor", "GATE", nand_from_nor, guard=g("NAND", two_only=True)),
        Rule("buf-from-inv", "GATE", buf_structural, guard=g("BUF")),
    ]
