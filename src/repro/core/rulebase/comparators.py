"""Decomposition rules for n-bit magnitude comparators."""

from __future__ import annotations

from typing import List

from repro.core.rules import DecompBuilder, Rule, RuleContext
from repro.core.rulebase.helpers import and2, invert, or2, wide_gate
from repro.core.specs import ComponentSpec, comparator_spec, gate_spec, make_spec
from repro.netlist.nets import Const

_BASE_OPS = ("EQ", "LT", "GT")


def _ops(spec: ComponentSpec):
    return spec.ops or _BASE_OPS


def cmp_halves(spec: ComponentSpec, context: RuleContext):
    """COMPARATOR(w) -> high-half cascaded comparator fed by the
    low-half comparator's results (the 7485-style expansion)."""
    width = spec.width
    lo = width // 2
    hi = width - lo
    b = DecompBuilder(spec, f"cmp{width}_halves")
    lo_spec = comparator_spec(lo, _BASE_OPS)
    hi_spec = comparator_spec(hi, _BASE_OPS, cascaded=True)
    eq_lo = b.net("eq_lo", 1)
    lt_lo = b.net("lt_lo", 1)
    gt_lo = b.net("gt_lo", 1)
    b.inst("c_lo", lo_spec, A=b.port("A")[0:lo], B=b.port("B")[0:lo],
           EQ=eq_lo, LT=lt_lo, GT=gt_lo)
    pins = dict(A=b.port("A")[lo:width], B=b.port("B")[lo:width],
                EQ_IN=eq_lo, LT_IN=lt_lo, GT_IN=gt_lo)
    for op in _BASE_OPS:
        if b.has_port(op):
            pins[op] = b.port(op)
    hi_inst = b.inst("c_hi", hi_spec, **pins)
    # Any base output the target spec lacks simply dangles.
    yield b.done()


def cmp_bit_gates(spec: ComponentSpec, context: RuleContext):
    """COMPARATOR(1): EQ = XNOR, LT = ~A AND B, GT = A AND ~B."""
    b = DecompBuilder(spec, "cmp1_gates")
    a = b.port("A").ref()
    c = b.port("B").ref()
    ops = _ops(spec)
    na = invert(b, "na", a, 1) if ("LT" in ops) else None
    nb = invert(b, "nb", c, 1) if ("GT" in ops) else None
    if "EQ" in ops:
        b.inst("xeq", gate_spec("XNOR", 2, 1), I0=a, I1=c, O=b.port("EQ"))
    if "LT" in ops:
        b.inst("glt", gate_spec("AND", 2, 1), I0=na, I1=c, O=b.port("LT"))
    if "GT" in ops:
        b.inst("ggt", gate_spec("AND", 2, 1), I0=a, I1=nb, O=b.port("GT"))
    yield b.done()


def cmp_cascade_combine(spec: ComponentSpec, context: RuleContext):
    """Cascaded COMPARATOR -> plain comparator + the combine gates:
    EQ = eq AND eq_in;  LT = lt OR (eq AND lt_in);  GT symmetric."""
    width = spec.width
    b = DecompBuilder(spec, f"cmp{width}_cascade_combine")
    plain = comparator_spec(width, _BASE_OPS)
    eq = b.net("eq", 1)
    lt = b.net("lt", 1)
    gt = b.net("gt", 1)
    b.inst("c0", plain, A=b.port("A"), B=b.port("B"), EQ=eq, LT=lt, GT=gt)
    ops = _ops(spec)
    if "EQ" in ops:
        b.inst("g_eq", gate_spec("AND", 2, 1),
               I0=eq, I1=b.port("EQ_IN"), O=b.port("EQ"))
    if "LT" in ops:
        t = and2(b, "t_lt", eq.ref(), b.port("LT_IN").ref(), 1)
        b.inst("g_lt", gate_spec("OR", 2, 1), I0=lt, I1=t, O=b.port("LT"))
    if "GT" in ops:
        t = and2(b, "t_gt", eq.ref(), b.port("GT_IN").ref(), 1)
        b.inst("g_gt", gate_spec("OR", 2, 1), I0=gt, I1=t, O=b.port("GT"))
    yield b.done()


def cmp_derived_ops(spec: ComponentSpec, context: RuleContext):
    """Comparator with derived operations (NE/LE/GE/ZEROP) -> base
    EQ/LT/GT comparator plus output gates."""
    width = spec.width
    ops = _ops(spec)
    extra = [op for op in ops if op not in _BASE_OPS]
    if not extra:
        return
    b = DecompBuilder(spec, f"cmp{width}_derived")
    plain = comparator_spec(width, _BASE_OPS)
    eq = b.net("eq", 1)
    lt = b.net("lt", 1)
    gt = b.net("gt", 1)
    b.inst("c0", plain, A=b.port("A"), B=b.port("B"), EQ=eq, LT=lt, GT=gt)
    for op in ops:
        if op == "EQ":
            b.inst("b_eq", gate_spec("BUF", width=1), I0=eq, O=b.port("EQ"))
        elif op == "LT":
            b.inst("b_lt", gate_spec("BUF", width=1), I0=lt, O=b.port("LT"))
        elif op == "GT":
            b.inst("b_gt", gate_spec("BUF", width=1), I0=gt, O=b.port("GT"))
        elif op == "NE":
            b.inst("g_ne", gate_spec("NOT", width=1), I0=eq, O=b.port("NE"))
        elif op == "LE":
            b.inst("g_le", gate_spec("OR", 2, 1), I0=lt, I1=eq, O=b.port("LE"))
        elif op == "GE":
            b.inst("g_ge", gate_spec("OR", 2, 1), I0=gt, I1=eq, O=b.port("GE"))
        elif op == "ZEROP":
            inputs = [b.port("A")[i] for i in range(width)]
            zp = wide_gate(b, "zp", "NOR", inputs, 1) if width > 1 else \
                invert(b, "zp1", b.port("A").ref(), 1)
            b.inst("b_zp", gate_spec("BUF", width=1), I0=zp, O=b.port("ZEROP"))
    yield b.done()


def cmp_tie_cascade(spec: ComponentSpec, context: RuleContext):
    """Plain COMPARATOR -> cascaded comparator with the cascade inputs
    tied to their identity values (EQ_IN=1, LT_IN=0, GT_IN=0), enabling
    direct use of data-book cascadable comparator cells."""
    width = spec.width
    b = DecompBuilder(spec, f"cmp{width}_tie_cascade")
    casc = comparator_spec(width, _BASE_OPS, cascaded=True)
    pins = dict(A=b.port("A"), B=b.port("B"),
                EQ_IN=Const(1, 1), LT_IN=Const(0, 1), GT_IN=Const(0, 1))
    for op in _BASE_OPS:
        if b.has_port(op):
            pins[op] = b.port(op)
    b.inst("c0", casc, **pins)
    yield b.done()


def cmp_via_sub(spec: ComponentSpec, context: RuleContext):
    """COMPARATOR(EQ,LT,GT) -> subtractor-based: LT = ~carry(a-b),
    EQ = (a-b) == 0, GT = ~(LT | EQ).  Fast when the adder is fast."""
    width = spec.width
    b = DecompBuilder(spec, f"cmp{width}_via_sub")
    diff = b.net("diff", width)
    carry = b.net("carry", 1)
    b.inst("sub", make_spec("SUB", width, carry_out=True),
           A=b.port("A"), B=b.port("B"), S=diff, CO=carry)
    eq = wide_gate(b, "z", "NOR", [diff[i] for i in range(width)], 1) \
        if width > 1 else invert(b, "z1", diff.ref(), 1)
    lt = invert(b, "nlt", carry.ref(), 1)
    b.inst("b_eq", gate_spec("BUF", width=1), I0=eq, O=b.port("EQ"))
    b.inst("b_lt", gate_spec("BUF", width=1), I0=lt, O=b.port("LT"))
    b.inst("g_gt", gate_spec("NOR", 2, 1), I0=lt, I1=eq, O=b.port("GT"))
    yield b.done()


def rules() -> List[Rule]:
    base_only = lambda s: set(_ops(s)) <= set(_BASE_OPS)
    return [
        Rule("cmp-halves", "COMPARATOR", cmp_halves,
             guard=lambda s: s.width >= 2 and base_only(s)
             and not s.get("cascaded", False)),
        Rule("cmp-bit-gates", "COMPARATOR", cmp_bit_gates,
             guard=lambda s: s.width == 1 and base_only(s)
             and not s.get("cascaded", False)),
        Rule("cmp-cascade-combine", "COMPARATOR", cmp_cascade_combine,
             guard=lambda s: s.get("cascaded", False) and base_only(s)),
        Rule("cmp-derived-ops", "COMPARATOR", cmp_derived_ops,
             guard=lambda s: not s.get("cascaded", False)
             and bool(set(_ops(s)) - set(_BASE_OPS))),
        Rule("cmp-tie-cascade", "COMPARATOR", cmp_tie_cascade,
             guard=lambda s: base_only(s) and not s.get("cascaded", False)),
        Rule("cmp-via-sub", "COMPARATOR", cmp_via_sub,
             guard=lambda s: s.width >= 2 and tuple(sorted(_ops(s)))
             == ("EQ", "GT", "LT") and not s.get("cascaded", False)),
    ]
