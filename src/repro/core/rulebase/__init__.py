"""The DTAS generic rulebase.

The paper reports 86 rules written in the DTAS Design Language covering
"bitwise logic gates and multiplexers, binary and BCD decoders and
encoders, n-bit adders and comparators, n-bit arithmetic logic units,
shifters, n-by-m multipliers, and up/down counters" (section 7).  This
package provides the equivalent rules as Python rule objects, organized
by component family.  :func:`standard_rulebase` assembles them; the
LSI-specific rules live in :mod:`repro.core.library_rules`.
"""

from repro.core.rules import RuleBase


def standard_rulebase() -> RuleBase:
    """The full generic rulebase (no library-specific rules)."""
    from repro.core.rulebase import (
        alu,
        arithmetic,
        comparators,
        counters,
        encoding,
        logic,
        multipliers,
        routing,
        shifters,
        storage,
    )

    rulebase = RuleBase("dtas-generic")
    for module in (
        logic, routing, encoding, comparators, arithmetic,
        shifters, multipliers, storage, counters, alu,
    ):
        rulebase.extend(module.rules())
    return rulebase
