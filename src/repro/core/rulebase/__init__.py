"""The DTAS generic rulebase.

The paper reports 86 rules written in the DTAS Design Language covering
"bitwise logic gates and multiplexers, binary and BCD decoders and
encoders, n-bit adders and comparators, n-bit arithmetic logic units,
shifters, n-by-m multipliers, and up/down counters" (section 7).  This
package provides the equivalent rules as Python rule objects, organized
by component family.  :func:`standard_rulebase` assembles them; the
LSI-specific rules live in :mod:`repro.core.library_rules`.
"""

from typing import Dict, Tuple

from repro.core.rules import Rule, RuleBase

# Rule objects are immutable once built, and their builder closures key
# the process-wide decomposition cache in repro.core.design_space --
# recreating them per DTAS instance would both redo the construction
# work and defeat that cache.  Build each family's rules once.
_FAMILY_RULES: Dict[str, Tuple[Rule, ...]] = {}


def standard_rulebase() -> RuleBase:
    """The full generic rulebase (no library-specific rules)."""
    from repro.core.rulebase import (
        alu,
        arithmetic,
        comparators,
        counters,
        encoding,
        logic,
        multipliers,
        routing,
        shifters,
        storage,
    )

    rulebase = RuleBase("dtas-generic")
    for module in (
        logic, routing, encoding, comparators, arithmetic,
        shifters, multipliers, storage, counters, alu,
    ):
        rules = _FAMILY_RULES.get(module.__name__)
        if rules is None:
            rules = _FAMILY_RULES[module.__name__] = tuple(module.rules())
        rulebase.extend(rules)
    return rulebase
