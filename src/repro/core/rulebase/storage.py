"""Decomposition rules for registers, shift registers, register files,
and memories."""

from __future__ import annotations

from typing import List

from repro.core.rules import DecompBuilder, Rule, RuleContext
from repro.core.rulebase.helpers import and2, repl
from repro.core.specs import ComponentSpec, gate_spec, make_spec, mux_spec, sel_width
from repro.netlist.nets import Concat, Const


def reg_halves(spec: ComponentSpec, context: RuleContext):
    """REG(w) -> two half-width registers sharing clock/enable/reset."""
    width = spec.width
    lo = width // 2
    hi = width - lo
    b = DecompBuilder(spec, f"reg{width}_halves")
    sub_attrs = dict(
        enable=spec.get("enable", False) or None,
        async_reset=spec.get("async_reset", False) or None,
    )
    for name, start, part in (("r_lo", 0, lo), ("r_hi", lo, hi)):
        pins = dict(
            D=b.port("D")[start:start + part],
            CLK=b.port("CLK"),
            Q=b.port("Q")[start:start + part],
        )
        if spec.get("enable", False):
            pins["CEN"] = b.port("CEN")
        if spec.get("async_reset", False):
            pins["ARST"] = b.port("ARST")
        if spec.get("complement_out", False):
            pins["QN"] = b.port("QN")[start:start + part]
        b.inst(name, make_spec("REG", part, complement_out=spec.get(
            "complement_out", False) or None, **sub_attrs), **pins)
    yield b.done()


def reg_enable_mux(spec: ComponentSpec, context: RuleContext):
    """REG with clock-enable -> plain register + a recirculating mux
    (Q feeds back when the enable is low)."""
    width = spec.width
    b = DecompBuilder(spec, f"reg{width}_enable_mux")
    q = b.net("q", width)
    d_eff = b.net("d_eff", width)
    b.inst("m0", mux_spec(2, width),
           I0=q, I1=b.port("D"), S=b.port("CEN"), O=d_eff)
    sub_attrs = dict(async_reset=spec.get("async_reset", False) or None)
    pins = dict(D=d_eff, CLK=b.port("CLK"), Q=q)
    if spec.get("async_reset", False):
        pins["ARST"] = b.port("ARST")
    b.inst("r0", make_spec("REG", width, **sub_attrs), **pins)
    b.inst("b_q", gate_spec("BUF", width=width), I0=q, O=b.port("Q"))
    if spec.get("complement_out", False):
        b.inst("b_qn", gate_spec("NOT", width=width), I0=q, O=b.port("QN"))
    yield b.done()


def reg_complement_out(spec: ComponentSpec, context: RuleContext):
    """REG with complement output -> plain register + inverter."""
    width = spec.width
    b = DecompBuilder(spec, f"reg{width}_qn")
    q = b.net("q", width)
    sub_attrs = dict(
        enable=spec.get("enable", False) or None,
        async_reset=spec.get("async_reset", False) or None,
    )
    pins = dict(D=b.port("D"), CLK=b.port("CLK"), Q=q)
    if spec.get("enable", False):
        pins["CEN"] = b.port("CEN")
    if spec.get("async_reset", False):
        pins["ARST"] = b.port("ARST")
    b.inst("r0", make_spec("REG", width, **sub_attrs), **pins)
    b.inst("b_q", gate_spec("BUF", width=width), I0=q, O=b.port("Q"))
    b.inst("b_qn", gate_spec("NOT", width=width), I0=q, O=b.port("QN"))
    yield b.done()


def shift_reg_structural(spec: ComponentSpec, context: RuleContext):
    """SHIFT_REG -> register + 4:1 next-state mux
    (hold / load / shift-left / shift-right)."""
    width = spec.width
    b = DecompBuilder(spec, f"shiftreg{width}_structural")
    q = b.net("q", width)
    nxt = b.net("nxt", width)
    mux = b.inst("m0", mux_spec(4, width), S=b.port("MODE"), O=nxt)
    mux.connect("I0", q.ref())
    mux.connect("I1", b.port("D").ref())
    if width > 1:
        mux.connect("I2", Concat((b.port("SI").ref(), q[0:width - 1])))
        mux.connect("I3", Concat((q[1:width], b.port("SI").ref())))
    else:
        mux.connect("I2", b.port("SI").ref())
        mux.connect("I3", b.port("SI").ref())
    b.inst("r0", make_spec("REG", width), D=nxt, CLK=b.port("CLK"), Q=q)
    b.inst("b_q", gate_spec("BUF", width=width), I0=q, O=b.port("Q"))
    b.inst("b_so", gate_spec("BUF", width=1), I0=q[width - 1], O=b.port("SO"))
    yield b.done()


def regfile_structural(spec: ComponentSpec, context: RuleContext):
    """REGFILE(1r/1w) -> bank of enabled registers + write decoder +
    read mux."""
    if spec.get("n_read", 1) != 1 or spec.get("n_write", 1) != 1:
        return
    width = spec.width
    n_words = spec.get("n_words", 4)
    abits = sel_width(n_words)
    b = DecompBuilder(spec, f"regfile{n_words}x{width}")
    sel = b.net("wsel", 1 << abits)
    b.inst("dec", make_spec("DECODER", abits, enable=True),
           I=b.port("WA0"), EN=b.port("WE0"), O=sel)
    words = []
    for i in range(n_words):
        q = b.net(f"w{i}", width)
        b.inst(f"r{i}", make_spec("REG", width, enable=True),
               D=b.port("WD0"), CLK=b.port("CLK"), CEN=sel[i], Q=q)
        words.append(q)
    mux = b.inst("m_read", mux_spec(max(n_words, 2), width),
                 S=b.port("RA0"), O=b.port("RD0"))
    for i, q in enumerate(words):
        mux.connect(f"I{i}", q.ref())
    if n_words == 1:
        mux.connect("I1", Const(0, width))
    yield b.done()


def memory_structural(spec: ComponentSpec, context: RuleContext):
    """MEMORY -> register bank with shared read/write address."""
    width = spec.width
    n_words = spec.get("n_words", 16)
    abits = sel_width(n_words)
    b = DecompBuilder(spec, f"memory{n_words}x{width}")
    sel = b.net("wsel", 1 << abits)
    b.inst("dec", make_spec("DECODER", abits, enable=True),
           I=b.port("ADDR"), EN=b.port("WE"), O=sel)
    words = []
    for i in range(n_words):
        q = b.net(f"w{i}", width)
        b.inst(f"r{i}", make_spec("REG", width, enable=True),
               D=b.port("DIN"), CLK=b.port("CLK"), CEN=sel[i], Q=q)
        words.append(q)
    mux = b.inst("m_read", mux_spec(max(n_words, 2), width),
                 S=b.port("ADDR"), O=b.port("DOUT"))
    for i, q in enumerate(words):
        mux.connect(f"I{i}", q.ref())
    if n_words == 1:
        mux.connect("I1", Const(0, width))
    yield b.done()


def rules() -> List[Rule]:
    plain = lambda s: not s.get("enable", False) and not s.get(
        "complement_out", False)
    return [
        Rule("reg-halves", "REG", reg_halves,
             guard=lambda s: s.width >= 2),
        Rule("reg-enable-mux", "REG", reg_enable_mux,
             guard=lambda s: s.get("enable", False)),
        Rule("reg-complement-out", "REG", reg_complement_out,
             guard=lambda s: s.get("complement_out", False)
             and not s.get("enable", False)),
        Rule("shift-reg-structural", "SHIFT_REG", shift_reg_structural),
        Rule("regfile-structural", "REGFILE", regfile_structural,
             guard=lambda s: s.get("n_read", 1) == 1 and s.get("n_write", 1) == 1),
        Rule("memory-structural", "MEMORY", memory_structural,
             guard=lambda s: s.get("n_words", 16) <= 64),
    ]
