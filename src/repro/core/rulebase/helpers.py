"""Shared construction helpers for decomposition rules."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.rules import DecompBuilder
from repro.core.specs import ComponentSpec, gate_spec, make_spec
from repro.netlist.nets import Concat, Const, Endpoint, Net, NetRef


def repl(bit: Endpoint, width: int) -> Endpoint:
    """Broadcast a 1-bit endpoint across ``width`` bits (fan-out)."""
    if width == 1:
        return bit
    return Concat(tuple([bit] * width))


def as_ref(value) -> Endpoint:
    if isinstance(value, Net):
        return value.ref()
    return value


def is_pow2(n: int) -> bool:
    return n >= 1 and (n & (n - 1)) == 0


def next_pow2(n: int) -> int:
    p = 1
    while p < n:
        p <<= 1
    return p


def wide_gate(
    b: DecompBuilder,
    name: str,
    kind: str,
    inputs: Sequence[Endpoint],
    width: int = 1,
) -> Net:
    """Instantiate one ``kind`` gate over arbitrary many inputs and
    return its output net.  A single input collapses to a wire (or an
    inverter for NOT-like kinds)."""
    inputs = [as_ref(i) for i in inputs]
    if len(inputs) == 1 and kind in ("AND", "OR", "XOR"):
        out = b.net(f"{name}_w", width)
        buf = b.inst(f"{name}_buf", gate_spec("BUF", width=width), O=out)
        buf.connect("I0", inputs[0])
        return out
    out = b.net(f"{name}_o", width)
    gate = b.inst(
        f"{name}", gate_spec(kind, n_inputs=max(len(inputs), 2), width=width), O=out
    )
    if len(inputs) == 1:  # NOT/BUF
        gate.connect("I0", inputs[0])
    else:
        for i, endpoint in enumerate(inputs):
            gate.connect(f"I{i}", endpoint)
    return out


def invert(b: DecompBuilder, name: str, value: Endpoint, width: int = 1) -> Net:
    """NOT gate; returns the output net."""
    out = b.net(f"{name}_n", width)
    gate = b.inst(name, gate_spec("NOT", width=width), O=out)
    gate.connect("I0", as_ref(value))
    return out


def and2(b: DecompBuilder, name: str, a: Endpoint, c: Endpoint, width: int = 1) -> Net:
    return wide_gate(b, name, "AND", [a, c], width)


def or2(b: DecompBuilder, name: str, a: Endpoint, c: Endpoint, width: int = 1) -> Net:
    return wide_gate(b, name, "OR", [a, c], width)


def mux2(b: DecompBuilder, name: str, i0: Endpoint, i1: Endpoint, sel: Endpoint,
         width: int) -> Net:
    """2:1 mux module; returns the output net."""
    out = b.net(f"{name}_o", width)
    inst = b.inst(name, make_spec("MUX", width, n_inputs=2), O=out)
    inst.connect("I0", as_ref(i0))
    inst.connect("I1", as_ref(i1))
    inst.connect("S", as_ref(sel))
    return out


def zeros(width: int) -> Const:
    return Const(0, width)


def ones(width: int) -> Const:
    return Const((1 << width) - 1, width)
