"""Decomposition rules for n-bit arithmetic logic units.

The paper's Figure-3 component is a 64-bit, 16-function ALU with the
operation list (in select order)::

    ADD SUB INC DEC | EQ LT GT ZEROP | AND OR NAND NOR XOR XNOR LNOT LIMPL

``alu-16fn-split`` carves it into an arithmetic unit (the four adder
operations), a comparison unit, and a logic unit, steered by the two
top select bits -- no decode logic needed because the operation classes
align with select-bit boundaries.  The arithmetic unit then inherits
the *whole adder design space* (ripple / carry-look-ahead /
carry-select), which is what produces the figure's area-delay spread.
"""

from __future__ import annotations

from typing import List

from repro.core.rules import DecompBuilder, Rule, RuleContext
from repro.core.rulebase.helpers import invert, wide_gate
from repro.core.specs import (
    ALU16_OPS,
    ComponentSpec,
    comparator_spec,
    gate_spec,
    make_spec,
    mux_spec,
)
from repro.netlist.nets import Concat, Const

ARITH4 = ("ADD", "SUB", "INC", "DEC")
CMP4 = ("EQ", "LT", "GT", "ZEROP")
LOGIC8 = ("AND", "OR", "NAND", "NOR", "XOR", "XNOR", "LNOT", "LIMPL")


def alu_16fn_split(spec: ComponentSpec, context: RuleContext):
    """The paper's 16-function ALU -> arith + compare + logic units and
    a two-level output mux steered by S[3:2]."""
    width = spec.width
    b = DecompBuilder(spec, f"alu{width}_16fn_split")
    sel = b.port("S")

    # Arithmetic unit: a 4-function ALU over S[1:0].
    arith_spec = make_spec("ALU", width, ops=ARITH4,
                           carry_in=spec.get("carry_in", False) or None,
                           carry_out=True)
    arith_o = b.net("arith_o", width)
    arith_co = b.net("arith_co", 1)
    arith_pins = dict(A=b.port("A"), B=b.port("B"), S=sel[0:2],
                      O=arith_o, CO=arith_co)
    if spec.get("carry_in", False):
        arith_pins["CI"] = b.port("CI")
    b.inst("u_arith", arith_spec, **arith_pins)

    # Comparison unit + zero detector; result packed into bit 0.
    cmp_o = b.net("cmp_bits", 3)
    b.inst("u_cmp", comparator_spec(width, ("EQ", "LT", "GT")),
           A=b.port("A"), B=b.port("B"),
           EQ=cmp_o[0], LT=cmp_o[1], GT=cmp_o[2])
    if width > 1:
        zerop = wide_gate(b, "u_zero", "NOR",
                          [b.port("A")[i] for i in range(width)], 1)
    else:
        zerop = invert(b, "u_zero", b.port("A").ref(), 1)
    cmp_bit = b.net("cmp_bit", 1)
    m_cmp = b.inst("m_cmp", mux_spec(4, 1), S=sel[0:2], O=cmp_bit)
    m_cmp.connect("I0", cmp_o[0])
    m_cmp.connect("I1", cmp_o[1])
    m_cmp.connect("I2", cmp_o[2])
    m_cmp.connect("I3", zerop.ref())

    # Logic unit: an 8-function logic ALU over S[2:0].
    logic_spec = make_spec("ALU", width, ops=LOGIC8)
    logic_o = b.net("logic_o", width)
    b.inst("u_logic", logic_spec, A=b.port("A"), B=b.port("B"),
           S=sel[0:3], O=logic_o)

    # Output stage: S[3] picks logic; otherwise S[2] picks compare.
    lower = b.net("lower", width)
    m_low = b.inst("m_low", mux_spec(2, width), S=sel[2], O=lower)
    m_low.connect("I0", arith_o.ref())
    if width > 1:
        m_low.connect("I1", Concat((cmp_bit.ref(), Const(0, width - 1))))
    else:
        m_low.connect("I1", cmp_bit.ref())
    b.inst("m_out", mux_spec(2, width),
           I0=lower, I1=logic_o, S=sel[3], O=b.port("O"))

    if spec.get("carry_out", False):
        # Carry is defined only for the arithmetic class (S[3:2] == 00).
        n2 = invert(b, "ns2", sel[2], 1)
        n3 = invert(b, "ns3", sel[3], 1)
        arith_class = wide_gate(b, "arith_cls", "AND",
                                [n2.ref(), n3.ref()], 1)
        b.inst("g_co", gate_spec("AND", 2, 1),
               I0=arith_co, I1=arith_class, O=b.port("CO"))
    yield b.done()


def alu_arith4(spec: ComponentSpec, context: RuleContext):
    """4-function arithmetic ALU (ADD/SUB/INC/DEC) -> one adder with an
    operand-B selector:

        S=0 ADD: B      S=1 SUB: ~B     S=2 INC: +1     S=3 DEC: -1

    and the carry-in passed straight through -- the generic semantics
    were chosen so this realization is exact.
    """
    width = spec.width
    b = DecompBuilder(spec, f"alu{width}_arith4")
    nb = b.net("nb", width)
    b.inst("invb", gate_spec("NOT", width=width), I0=b.port("B"), O=nb)
    bsel = b.net("bsel", width)
    m_b = b.inst("m_b", mux_spec(4, width), S=b.port("S"), O=bsel)
    m_b.connect("I0", b.port("B").ref())
    m_b.connect("I1", nb.ref())
    m_b.connect("I2", Const(1, width))
    m_b.connect("I3", Const((1 << width) - 1, width))
    add_spec = make_spec("ADD", width, carry_in=True,
                         carry_out=spec.get("carry_out", False) or None)
    pins = dict(A=b.port("A"), B=bsel, S=b.port("O"))
    if spec.get("carry_in", False):
        pins["CI"] = b.port("CI")
    else:
        # Without a CI pin the SUB operation needs its two's-complement
        # +1: carry-in = (S == 01), the select code of SUB.
        ns1 = invert(b, "ns1", b.port("S")[1], 1)
        sub_ci = wide_gate(b, "sub_ci", "AND",
                           [b.port("S")[0], ns1.ref()], 1)
        pins["CI"] = sub_ci.ref()
    if spec.get("carry_out", False):
        pins["CO"] = b.port("CO")
    b.inst("add", add_spec, **pins)
    yield b.done()


def alu_logic8(spec: ComponentSpec, context: RuleContext):
    """8-function logic unit -> one gate per function + output mux.
    Gate order matches the select encoding of LOGIC8."""
    width = spec.width
    b = DecompBuilder(spec, f"alu{width}_logic8")
    a, c = b.port("A"), b.port("B")
    na = b.net("na", width)
    b.inst("inv_a", gate_spec("NOT", width=width), I0=a, O=na)

    outputs = []
    for kind in ("AND", "OR", "NAND", "NOR", "XOR", "XNOR"):
        out = b.net(f"o_{kind.lower()}", width)
        b.inst(f"g_{kind.lower()}", gate_spec(kind, 2, width),
               I0=a, I1=c, O=out)
        outputs.append(out)
    outputs.append(na)  # LNOT
    limpl = b.net("o_limpl", width)
    b.inst("g_limpl", gate_spec("OR", 2, width), I0=na, I1=c, O=limpl)
    outputs.append(limpl)

    mux = b.inst("m_o", mux_spec(8, width), S=b.port("S"), O=b.port("O"))
    for i, out in enumerate(outputs):
        mux.connect(f"I{i}", out.ref())
    if spec.get("carry_out", False):
        b.inst("b_co", gate_spec("BUF", width=1), I0=Const(0, 1),
               O=b.port("CO"))
    yield b.done()


def alu_addsub2(spec: ComponentSpec, context: RuleContext):
    """2-function (ADD, SUB) ALU -> ADDSUB with M = S[0]."""
    width = spec.width
    b = DecompBuilder(spec, f"alu{width}_addsub")
    sub_spec = make_spec("ADDSUB", width,
                         carry_in=spec.get("carry_in", False) or None,
                         carry_out=spec.get("carry_out", False) or None)
    pins = dict(A=b.port("A"), B=b.port("B"), M=b.port("S"), S=b.port("O"))
    if spec.get("carry_in", False):
        pins["CI"] = b.port("CI")
    if spec.get("carry_out", False):
        pins["CO"] = b.port("CO")
    b.inst("u0", sub_spec, **pins)
    yield b.done()


def alu_bitslice(spec: ComponentSpec, context: RuleContext):
    """Logic-only ALU -> bitwise slices sharing the select (valid only
    when every operation is bitwise)."""
    width = spec.width
    ops = spec.ops
    b = DecompBuilder(spec, f"alu{width}_slice")
    unit = make_spec("ALU", 1, ops=ops)
    for bit in range(width):
        b.inst(f"u{bit}", unit,
               A=b.port("A")[bit], B=b.port("B")[bit], S=b.port("S"),
               O=b.port("O")[bit])
    yield b.done()


def rules() -> List[Rule]:
    def ops_are(target):
        return lambda s: s.ops == target

    bitwise = set(LOGIC8)
    return [
        Rule("alu-16fn-split", "ALU", alu_16fn_split,
             guard=ops_are(ALU16_OPS)),
        Rule("alu-arith4", "ALU", alu_arith4, guard=ops_are(ARITH4)),
        Rule("alu-logic8", "ALU", alu_logic8, guard=ops_are(LOGIC8)),
        Rule("alu-addsub2", "ALU", alu_addsub2, guard=ops_are(("ADD", "SUB"))),
        Rule("alu-logic-bitslice", "ALU", alu_bitslice,
             guard=lambda s: s.width > 1 and set(s.ops) <= bitwise
             and not s.get("carry_out", False) and not s.get("carry_in", False)),
    ]
