"""Decomposition rules for multiplexers, selectors, and interconnect
components (tristate, bus, wired-or, buffer, delay)."""

from __future__ import annotations

from typing import List

from repro.core.rules import DecompBuilder, Rule, RuleContext
from repro.core.rulebase.helpers import is_pow2, next_pow2, repl, wide_gate
from repro.core.specs import ComponentSpec, gate_spec, make_spec, mux_spec, sel_width
from repro.netlist.nets import Concat, Const


def _n_inputs(spec: ComponentSpec) -> int:
    return spec.get("n_inputs", 2)


def mux_bitslice(spec: ComponentSpec, context: RuleContext):
    """MUX<w> -> w parallel 1-bit muxes sharing the select."""
    width, n = spec.width, _n_inputs(spec)
    b = DecompBuilder(spec, f"mux{n}_slice{width}")
    unit = mux_spec(n, 1)
    for bit in range(width):
        pins = {f"I{i}": b.port(f"I{i}")[bit] for i in range(n)}
        pins["S"] = b.port("S")
        pins["O"] = b.port("O")[bit]
        b.inst(f"m{bit}", unit, **pins)
    yield b.done()


def mux_pad(spec: ComponentSpec, context: RuleContext):
    """MUX with a non-power-of-two input count -> next power of two with
    the extra inputs tied low (matches the generic out-of-range-select
    semantics exactly)."""
    width, n = spec.width, _n_inputs(spec)
    padded = next_pow2(n)
    b = DecompBuilder(spec, f"mux{n}_pad{padded}")
    pins = {f"I{i}": b.port(f"I{i}") for i in range(n)}
    for i in range(n, padded):
        pins[f"I{i}"] = Const(0, width)
    pins["S"] = b.port("S")
    pins["O"] = b.port("O")
    b.inst("m", mux_spec(padded, width), **pins)
    yield b.done()


def mux_tree(spec: ComponentSpec, context: RuleContext):
    """MUX(2^k) -> two MUX(2^(k-1)) halves + a 2:1 root, the select's
    top bit steering the root."""
    width, n = spec.width, _n_inputs(spec)
    half = n // 2
    bits = sel_width(n)
    b = DecompBuilder(spec, f"mux{n}_tree")
    lo = b.net("lo", width)
    hi = b.net("hi", width)
    low_sel = b.port("S")[0:bits - 1]
    half_spec = mux_spec(half, width)
    lo_pins = {f"I{i}": b.port(f"I{i}") for i in range(half)}
    lo_pins.update(S=low_sel, O=lo)
    hi_pins = {f"I{i}": b.port(f"I{half + i}") for i in range(half)}
    hi_pins.update(S=low_sel, O=hi)
    b.inst("m_lo", half_spec, **lo_pins)
    b.inst("m_hi", half_spec, **hi_pins)
    b.inst("m_root", mux_spec(2, width),
           I0=lo, I1=hi, S=b.port("S")[bits - 1], O=b.port("O"))
    yield b.done()


def mux2_gates(spec: ComponentSpec, context: RuleContext):
    """MUX2 = OR(AND(I0, ~S), AND(I1, S)) -- for mux-free libraries."""
    width = spec.width
    b = DecompBuilder(spec, "mux2_gates")
    sel = b.port("S").ref()
    nsel = b.net("nsel", 1)
    b.inst("inv", gate_spec("NOT", width=1), I0=sel, O=nsel)
    a = b.net("a", width)
    c = b.net("c", width)
    b.inst("g0", gate_spec("AND", 2, width),
           I0=b.port("I0"), I1=repl(nsel.ref(), width), O=a)
    b.inst("g1", gate_spec("AND", 2, width),
           I0=b.port("I1"), I1=repl(sel, width), O=c)
    b.inst("g2", gate_spec("OR", 2, width), I0=a, I1=c, O=b.port("O"))
    yield b.done()


def selector_as_mux(spec: ComponentSpec, context: RuleContext):
    """SELECTOR is functionally a MUX; rewrite to the MUX family."""
    width, n = spec.width, _n_inputs(spec)
    b = DecompBuilder(spec, "selector_as_mux")
    pins = {f"I{i}": b.port(f"I{i}") for i in range(n)}
    pins["S"] = b.port("S")
    pins["O"] = b.port("O")
    b.inst("m", mux_spec(n, width), **pins)
    yield b.done()


def tristate_gates(spec: ComponentSpec, context: RuleContext):
    """TRISTATE modeled onto two-state logic: O = I AND OE."""
    width = spec.width
    b = DecompBuilder(spec, "tristate_gates")
    b.inst("g0", gate_spec("AND", 2, width),
           I0=b.port("I"), I1=repl(b.port("OE").ref(), width), O=b.port("O"))
    yield b.done()


def bus_structural(spec: ComponentSpec, context: RuleContext):
    """BUS -> per-driver tristates merged by a wired-or."""
    width, n = spec.width, spec.get("n_drivers", 2)
    b = DecompBuilder(spec, f"bus{n}_structural")
    legs = []
    tri = make_spec("TRISTATE", width)
    for i in range(n):
        leg = b.net(f"leg{i}", width)
        b.inst(f"t{i}", tri, I=b.port(f"I{i}"), OE=b.port(f"OE{i}"), O=leg)
        legs.append(leg)
    b.inst("merge", make_spec("WIRED_OR", width, n_inputs=n),
           **{f"I{i}": leg for i, leg in enumerate(legs)}, O=b.port("O"))
    yield b.done()


def wired_or_gates(spec: ComponentSpec, context: RuleContext):
    """WIRED_OR -> an OR gate (two-state model)."""
    width, n = spec.width, spec.get("n_inputs", 2)
    b = DecompBuilder(spec, f"wiredor{n}_gates")
    pins = {f"I{i}": b.port(f"I{i}") for i in range(n)}
    b.inst("g0", gate_spec("OR", n_inputs=max(n, 2), width=width),
           **pins, O=b.port("O"))
    yield b.done()


def buffer_as_gate(spec: ComponentSpec, context: RuleContext):
    """BUFFER / DELAY / SCHMITT / CLOCK_DRIVER -> a BUF gate."""
    width = spec.width
    b = DecompBuilder(spec, f"{spec.ctype.lower()}_as_buf")
    b.inst("g0", gate_spec("BUF", width=width), I0=b.port("I"), O=b.port("O"))
    yield b.done()


def rules() -> List[Rule]:
    return [
        Rule("mux-bitslice", "MUX", mux_bitslice, guard=lambda s: s.width > 1),
        Rule("mux-pad", "MUX", mux_pad,
             guard=lambda s: not is_pow2(_n_inputs(s))),
        Rule("mux-tree", "MUX", mux_tree,
             guard=lambda s: is_pow2(_n_inputs(s)) and _n_inputs(s) > 2),
        Rule("mux2-gates", "MUX", mux2_gates,
             guard=lambda s: _n_inputs(s) == 2),
        Rule("selector-as-mux", "SELECTOR", selector_as_mux),
        Rule("tristate-gates", "TRISTATE", tristate_gates),
        Rule("bus-structural", "BUS", bus_structural),
        Rule("wired-or-gates", "WIRED_OR", wired_or_gates),
        Rule("buffer-as-gate", "BUFFER", buffer_as_gate),
        Rule("delay-as-gate", "DELAY", buffer_as_gate),
        Rule("schmitt-as-gate", "SCHMITT", buffer_as_gate),
        Rule("clock-driver-as-gate", "CLOCK_DRIVER", buffer_as_gate),
    ]
