"""Decomposition rules for n-by-m multipliers.

``mult-array`` is the classic shift-add array: one AND row per
multiplier bit feeding a chain of carry-save style adders.  ``mult-base``
grounds the 1x1 case in a single AND gate, and ``mult-split`` offers the
schoolbook quadrant decomposition as an alternative design point for
even widths.
"""

from __future__ import annotations

from typing import List

from repro.core.rules import DecompBuilder, Rule, RuleContext
from repro.core.rulebase.helpers import repl
from repro.core.specs import ComponentSpec, gate_spec, make_spec
from repro.netlist.nets import Concat, Const


def _width_b(spec: ComponentSpec) -> int:
    return spec.get("width_b", spec.width)


def mult_base(spec: ComponentSpec, context: RuleContext):
    """MULT(1x1) -> AND2 (the product's high bit is constant zero)."""
    b = DecompBuilder(spec, "mult1x1_and")
    b.inst("g0", gate_spec("AND", 2, 1),
           I0=b.port("A"), I1=b.port("B"), O=b.port("P")[0])
    b.inst("g1", gate_spec("BUF", width=1), I0=Const(0, 1),
           O=b.port("P")[1])
    yield b.done()


def mult_array(spec: ComponentSpec, context: RuleContext):
    """MULT(wa x wb) -> wb partial-product AND rows + (wb-1) adders.

    Row j computes pp_j = A AND B[j]; the accumulator shifts right one
    position per row, emitting one product bit each step.
    """
    wa, wb = spec.width, _width_b(spec)
    if wa < 1 or wb < 2:
        return
    b = DecompBuilder(spec, f"mult{wa}x{wb}_array")
    add_spec = make_spec("ADD", wa, carry_in=None, carry_out=True)

    rows = []
    for j in range(wb):
        row = b.net(f"pp{j}", wa)
        b.inst(f"and{j}", gate_spec("AND", 2, wa),
               I0=b.port("A"), I1=repl(b.port("B")[j], wa), O=row)
        rows.append(row)

    acc = rows[0]       # running wa-bit sum
    carry = None        # carry bit alongside the accumulator
    b.inst("p0", gate_spec("BUF", width=1), I0=acc[0], O=b.port("P")[0])
    for j in range(1, wb):
        shifted_hi = Const(0, 1) if carry is None else carry.ref()
        shifted = Concat((acc[1:wa], shifted_hi))
        new_acc = b.net(f"acc{j}", wa)
        new_carry = b.net(f"c{j}", 1)
        adder = b.inst(f"add{j}", add_spec, B=rows[j], S=new_acc, CO=new_carry)
        adder.connect("A", shifted)
        b.inst(f"p{j}", gate_spec("BUF", width=1),
               I0=new_acc[0], O=b.port("P")[j])
        acc, carry = new_acc, new_carry
    # Remaining product bits: the final accumulator and carry.
    b.inst("p_hi", gate_spec("BUF", width=wa),
           I0=Concat((acc[1:wa], carry.ref())),
           O=b.port("P")[wb:wa + wb])
    yield b.done()


def mult_split(spec: ComponentSpec, context: RuleContext):
    """Schoolbook split: A*B = AhBh<<w + (AhBl + AlBh)<<(w/2) + AlBl,
    for square multipliers of even width (an alternative structure
    trading adders for smaller multipliers)."""
    wa, wb = spec.width, _width_b(spec)
    if wa != wb or wa < 2 or wa % 2 != 0:
        return
    half = wa // 2
    b = DecompBuilder(spec, f"mult{wa}_split")
    sub = make_spec("MULT", half, width_b=half)
    ll = b.net("ll", wa)
    lh = b.net("lh", wa)
    hl = b.net("hl", wa)
    hh = b.net("hh", wa)
    b.inst("m_ll", sub, A=b.port("A")[0:half], B=b.port("B")[0:half], P=ll)
    b.inst("m_lh", sub, A=b.port("A")[0:half], B=b.port("B")[half:wa], P=lh)
    b.inst("m_hl", sub, A=b.port("A")[half:wa], B=b.port("B")[0:half], P=hl)
    b.inst("m_hh", sub, A=b.port("A")[half:wa], B=b.port("B")[half:wa], P=hh)

    # mid = lh + hl (wa+1 bits with carry)
    mid = b.net("mid", wa)
    mid_c = b.net("mid_c", 1)
    b.inst("a_mid", make_spec("ADD", wa, carry_out=True),
           A=lh, B=hl, S=mid, CO=mid_c)
    # high part: hh + (mid >> half) aligned at bit wa:
    # P = ll + mid<<half + hh<<wa  over 2*wa bits, low half bits of ll pass.
    low = b.net("low_sum", wa)
    low_c = b.net("low_c", 1)
    mid_shifted = Concat((Const(0, half), mid[0:wa - half]))
    a_low = b.inst("a_low", make_spec("ADD", wa, carry_out=True),
                   B=low, CO=low_c)
    a_low.connect("A", ll.ref())
    a_low.connect("B", mid_shifted)
    a_low.connect("S", low.ref())
    hi = b.net("hi_sum", wa)
    mid_hi = Concat((mid[wa - half:wa], mid_c.ref(), Const(0, half - 1))) \
        if half > 1 else Concat((mid[wa - half:wa], mid_c.ref()))
    a_hi = b.inst("a_hi", make_spec("ADD", wa, carry_in=True),
                  CI=low_c, S=hi)
    a_hi.connect("A", hh.ref())
    a_hi.connect("B", mid_hi)
    b.inst("b_lo", gate_spec("BUF", width=wa), I0=low, O=b.port("P")[0:wa])
    b.inst("b_hi", gate_spec("BUF", width=wa), I0=hi, O=b.port("P")[wa:2 * wa])
    yield b.done()


def rules() -> List[Rule]:
    return [
        Rule("mult-base", "MULT", mult_base,
             guard=lambda s: s.width == 1 and _width_b(s) == 1),
        Rule("mult-row-base", "MULT", mult_array,
             guard=lambda s: s.width >= 1 and _width_b(s) >= 2),
        Rule("mult-split", "MULT", mult_split,
             guard=lambda s: s.width == _width_b(s) and s.width >= 4
             and s.width % 2 == 0),
    ]
