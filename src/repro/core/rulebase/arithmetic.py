"""Decomposition rules for adders, subtractors, incrementers, and the
carry-look-ahead generator.

These rules create the area/delay spectrum the paper's Figure 3 plots:

- ``add-ripple-halves`` produces ripple-carry chains at every
  granularity the library supports (slow, small);
- ``add-cla`` produces carry-look-ahead groups wired through a
  CLA_GEN, recursively yielding one- and two-level look-ahead
  structures (fast, large);
- ``add-carry-select`` duplicates the upper half for both carry values
  and muxes (intermediate).

Carry conventions follow :mod:`repro.genus.behavior`: SUB is
``a + ~b + ci`` (ci defaults to 1 without a CI pin), INC is
``a + 1 + ci``, DEC is ``a - 1 + ci``.
"""

from __future__ import annotations

from typing import List

from repro.core.rules import DecompBuilder, Rule, RuleContext
from repro.core.rulebase.helpers import invert, ones, repl, wide_gate
from repro.core.specs import ComponentSpec, gate_spec, make_spec
from repro.netlist.nets import Concat, Const


def _adder_spec(width: int, carry_in: bool = True, carry_out: bool = True,
                group_carry: bool = False) -> ComponentSpec:
    return make_spec("ADD", width, carry_in=carry_in or None,
                     carry_out=carry_out or None, group_carry=group_carry or None)


def _ci_endpoint(b: DecompBuilder, spec: ComponentSpec, default: int):
    if spec.get("carry_in", False):
        return b.port("CI").ref()
    return Const(default, 1)


def add_ripple_halves(spec: ComponentSpec, context: RuleContext):
    """ADD(w) -> ADD(hi) . ADD(lo) with the carry rippling through."""
    width = spec.width
    lo = width // 2
    hi = width - lo
    b = DecompBuilder(spec, f"add{width}_ripple_halves")
    carry = b.net("c_mid", 1)
    lo_spec = _adder_spec(lo)
    hi_spec = _adder_spec(hi, carry_out=spec.get("carry_out", False))
    b.inst("a_lo", lo_spec,
           A=b.port("A")[0:lo], B=b.port("B")[0:lo],
           CI=_ci_endpoint(b, spec, 0), S=b.port("S")[0:lo], CO=carry)
    hi_pins = dict(
        A=b.port("A")[lo:width], B=b.port("B")[lo:width],
        CI=carry, S=b.port("S")[lo:width],
    )
    if spec.get("carry_out", False):
        hi_pins["CO"] = b.port("CO")
    b.inst("a_hi", hi_spec, **hi_pins)
    yield b.done()


def add_full_adder_gates(spec: ComponentSpec, context: RuleContext):
    """ADD(1) -> the classic two-XOR / two-AND / one-OR full adder."""
    b = DecompBuilder(spec, "add1_gates")
    a = b.port("A").ref()
    c = b.port("B").ref()
    ci = _ci_endpoint(b, spec, 0)
    axb = b.net("axb", 1)
    b.inst("x0", gate_spec("XOR", 2, 1), I0=a, I1=c, O=axb)
    b.inst("x1", gate_spec("XOR", 2, 1), I0=axb, I1=ci, O=b.port("S"))
    if spec.get("carry_out", False):
        t0 = b.net("t0", 1)
        t1 = b.net("t1", 1)
        b.inst("g0", gate_spec("AND", 2, 1), I0=a, I1=c, O=t0)
        b.inst("g1", gate_spec("AND", 2, 1), I0=axb, I1=ci, O=t1)
        b.inst("g2", gate_spec("OR", 2, 1), I0=t0, I1=t1, O=b.port("CO"))
    yield b.done()


def add_cla(spec: ComponentSpec, context: RuleContext):
    """ADD(w) -> g look-ahead groups of ADD(w/g) with G/P outputs,
    carries distributed by a CLA_GEN(g).

    When the target spec itself has group-carry outputs, the block's
    G/P come from the CLA_GEN's group generate/propagate -- which is
    exactly how two-level look-ahead composes.
    """
    width = spec.width
    for groups in (4, 2):
        if width % groups != 0:
            continue
        sub_width = width // groups
        if sub_width < 1 or groups < 2:
            continue
        b = DecompBuilder(spec, f"add{width}_cla{groups}")
        sub = _adder_spec(sub_width, carry_in=True, carry_out=False,
                          group_carry=True)
        g_bits = []
        p_bits = []
        carries = b.net("carries", groups)
        ci = _ci_endpoint(b, spec, 0)
        for i in range(groups):
            lo = i * sub_width
            hi = lo + sub_width
            g_net = b.net(f"g{i}", 1)
            p_net = b.net(f"p{i}", 1)
            carry_in = ci if i == 0 else carries[i - 1]
            b.inst(f"a{i}", sub,
                   A=b.port("A")[lo:hi], B=b.port("B")[lo:hi],
                   CI=carry_in, S=b.port("S")[lo:hi], G=g_net, P=p_net)
            g_bits.append(g_net)
            p_bits.append(p_net)
        cla_pins = dict(
            G=Concat(tuple(g.ref() for g in g_bits)),
            P=Concat(tuple(p.ref() for p in p_bits)),
            CI=ci,
            C=carries,
        )
        if spec.get("group_carry", False):
            cla_pins["GG"] = b.port("G")
            cla_pins["GP"] = b.port("P")
        b.inst("cla", make_spec("CLA_GEN", 1, groups=groups), **cla_pins)
        if spec.get("carry_out", False):
            b.inst("co_buf", gate_spec("BUF", width=1),
                   I0=carries[groups - 1], O=b.port("CO"))
        yield b.done()


def add_carry_select(spec: ComponentSpec, context: RuleContext):
    """ADD(w) -> low half plus two speculative high halves (carry 0 and
    carry 1) resolved by a mux."""
    width = spec.width
    lo = width // 2
    hi = width - lo
    b = DecompBuilder(spec, f"add{width}_select")
    c_mid = b.net("c_mid", 1)
    b.inst("a_lo", _adder_spec(lo),
           A=b.port("A")[0:lo], B=b.port("B")[0:lo],
           CI=_ci_endpoint(b, spec, 0), S=b.port("S")[0:lo], CO=c_mid)
    hi_spec = _adder_spec(hi)
    s0 = b.net("s0", hi)
    s1 = b.net("s1", hi)
    c0 = b.net("c0", 1)
    c1 = b.net("c1", 1)
    b.inst("a_h0", hi_spec, A=b.port("A")[lo:width], B=b.port("B")[lo:width],
           CI=Const(0, 1), S=s0, CO=c0)
    b.inst("a_h1", hi_spec, A=b.port("A")[lo:width], B=b.port("B")[lo:width],
           CI=Const(1, 1), S=s1, CO=c1)
    b.inst("m_s", make_spec("MUX", hi, n_inputs=2),
           I0=s0, I1=s1, S=c_mid, O=b.port("S")[lo:width])
    if spec.get("carry_out", False):
        b.inst("m_c", make_spec("MUX", 1, n_inputs=2),
               I0=c0, I1=c1, S=c_mid, O=b.port("CO"))
    yield b.done()


def sub_via_add(spec: ComponentSpec, context: RuleContext):
    """SUB(w) = ADD(w) with B inverted; carry-in defaults to 1."""
    width = spec.width
    b = DecompBuilder(spec, f"sub{width}_via_add")
    nb = b.net("nb", width)
    b.inst("invb", gate_spec("NOT", width=width), I0=b.port("B"), O=nb)
    pins = dict(A=b.port("A"), B=nb, CI=_ci_endpoint(b, spec, 1),
                S=b.port("S"))
    if spec.get("carry_out", False):
        pins["CO"] = b.port("CO")
    b.inst("add", _adder_spec(width, carry_out=spec.get("carry_out", False)),
           **pins)
    yield b.done()


def addsub_via_add(spec: ComponentSpec, context: RuleContext):
    """ADDSUB(w) = ADD(w) with B XOR-ed against the mode bit; without a
    CI pin the mode itself supplies the +1 of two's complement."""
    width = spec.width
    b = DecompBuilder(spec, f"addsub{width}_via_add")
    bx = b.net("bx", width)
    b.inst("xorb", gate_spec("XOR", 2, width),
           I0=b.port("B"), I1=repl(b.port("M").ref(), width), O=bx)
    ci = b.port("CI").ref() if spec.get("carry_in", False) else b.port("M").ref()
    pins = dict(A=b.port("A"), B=bx, CI=ci, S=b.port("S"))
    if spec.get("carry_out", False):
        pins["CO"] = b.port("CO")
    b.inst("add", _adder_spec(width, carry_out=spec.get("carry_out", False)),
           **pins)
    yield b.done()


def addsub_halves(spec: ComponentSpec, context: RuleContext):
    """ADDSUB(w) -> two half-width ADDSUBs sharing the mode, carry
    rippling between them (enables mapping onto ADDSUB cells)."""
    width = spec.width
    if width < 2:
        return
    lo = width // 2
    hi = width - lo
    b = DecompBuilder(spec, f"addsub{width}_halves")
    carry = b.net("c_mid", 1)
    lo_spec = make_spec("ADDSUB", lo, carry_in=True, carry_out=True)
    hi_spec = make_spec("ADDSUB", hi, carry_in=True,
                        carry_out=spec.get("carry_out", False) or None)
    ci = b.port("CI").ref() if spec.get("carry_in", False) else b.port("M").ref()
    b.inst("s_lo", lo_spec, A=b.port("A")[0:lo], B=b.port("B")[0:lo],
           M=b.port("M"), CI=ci, S=b.port("S")[0:lo], CO=carry)
    hi_pins = dict(A=b.port("A")[lo:width], B=b.port("B")[lo:width],
                   M=b.port("M"), CI=carry, S=b.port("S")[lo:width])
    if spec.get("carry_out", False):
        hi_pins["CO"] = b.port("CO")
    b.inst("s_hi", hi_spec, **hi_pins)
    yield b.done()


def inc_via_add(spec: ComponentSpec, context: RuleContext):
    """INC(w) = ADD(w) with B = 1."""
    width = spec.width
    b = DecompBuilder(spec, f"inc{width}_via_add")
    pins = dict(A=b.port("A"), B=Const(1, width),
                CI=_ci_endpoint(b, spec, 0), S=b.port("S"))
    if spec.get("carry_out", False):
        pins["CO"] = b.port("CO")
    b.inst("add", _adder_spec(width, carry_out=spec.get("carry_out", False)),
           **pins)
    yield b.done()


def dec_via_add(spec: ComponentSpec, context: RuleContext):
    """DEC(w) = ADD(w) with B = all-ones (two's-complement -1)."""
    width = spec.width
    b = DecompBuilder(spec, f"dec{width}_via_add")
    pins = dict(A=b.port("A"), B=ones(width),
                CI=_ci_endpoint(b, spec, 0), S=b.port("S"))
    if spec.get("carry_out", False):
        pins["CO"] = b.port("CO")
    b.inst("add", _adder_spec(width, carry_out=spec.get("carry_out", False)),
           **pins)
    yield b.done()


def inc_half_adder_chain(spec: ComponentSpec, context: RuleContext):
    """INC(w) without carry-in -> half-adder chain (small, slow)."""
    if spec.get("carry_in", False):
        return
    width = spec.width
    b = DecompBuilder(spec, f"inc{width}_ha_chain")
    carry = Const(1, 1)
    for i in range(width):
        a_bit = b.port("A")[i]
        b.inst(f"x{i}", gate_spec("XOR", 2, 1), I0=a_bit, I1=carry,
               O=b.port("S")[i])
        need_carry = i < width - 1 or spec.get("carry_out", False)
        if need_carry:
            nxt = b.net(f"c{i + 1}", 1)
            b.inst(f"a{i}", gate_spec("AND", 2, 1), I0=a_bit, I1=carry, O=nxt)
            carry = nxt.ref()
    if spec.get("carry_out", False):
        b.inst("cob", gate_spec("BUF", width=1), I0=carry, O=b.port("CO"))
    yield b.done()


def dec_borrow_chain(spec: ComponentSpec, context: RuleContext):
    """DEC(w) without carry-in -> borrow chain of XOR/AND/NOT."""
    if spec.get("carry_in", False):
        return
    width = spec.width
    b = DecompBuilder(spec, f"dec{width}_borrow_chain")
    borrow = Const(1, 1)
    for i in range(width):
        a_bit = b.port("A")[i]
        b.inst(f"x{i}", gate_spec("XOR", 2, 1), I0=a_bit, I1=borrow,
               O=b.port("S")[i])
        need_borrow = i < width - 1 or spec.get("carry_out", False)
        if need_borrow:
            na = invert(b, f"n{i}", a_bit, 1)
            nxt = b.net(f"b{i + 1}", 1)
            b.inst(f"a{i}", gate_spec("AND", 2, 1), I0=na, I1=borrow, O=nxt)
            borrow = nxt.ref()
    if spec.get("carry_out", False):
        # DEC's CO (in a+~0+ci form) is the complement of the borrow.
        b.inst("con", gate_spec("NOT", width=1), I0=borrow, O=b.port("CO"))
    yield b.done()


def cla_gen_sop(spec: ComponentSpec, context: RuleContext):
    """CLA_GEN(g) -> true two-level sum-of-products look-ahead logic."""
    groups = spec.get("groups", 4)
    b = DecompBuilder(spec, f"cla{groups}_sop")
    g_bits = [b.port("G")[i] for i in range(groups)]
    p_bits = [b.port("P")[i] for i in range(groups)]
    ci = b.port("CI").ref()

    def carry_terms(upto: int, include_ci: bool):
        """SOP terms for the carry out of group ``upto``."""
        terms = []
        for j in range(upto, -1, -1):
            factors = [g_bits[j]] + [p_bits[k] for k in range(j + 1, upto + 1)]
            terms.append(factors)
        if include_ci:
            terms.append([ci] + [p_bits[k] for k in range(0, upto + 1)])
        return terms

    for i in range(groups):
        products = []
        for t, factors in enumerate(carry_terms(i, include_ci=True)):
            if len(factors) == 1:
                products.append(factors[0])
            else:
                products.append(wide_gate(b, f"c{i}_t{t}", "AND", factors, 1).ref())
        out = wide_gate(b, f"c{i}_or", "OR", products, 1)
        b.inst(f"c{i}_buf", gate_spec("BUF", width=1), I0=out, O=b.port("C")[i])

    gg_products = []
    for t, factors in enumerate(carry_terms(groups - 1, include_ci=False)):
        if len(factors) == 1:
            gg_products.append(factors[0])
        else:
            gg_products.append(wide_gate(b, f"gg_t{t}", "AND", factors, 1).ref())
    gg = wide_gate(b, "gg_or", "OR", gg_products, 1)
    b.inst("gg_buf", gate_spec("BUF", width=1), I0=gg, O=b.port("GG"))
    gp = wide_gate(b, "gp_and", "AND", [p.ref() if hasattr(p, 'ref') else p for p in
                                        [b.port("P")[i] for i in range(groups)]], 1)
    b.inst("gp_buf", gate_spec("BUF", width=1), I0=gp, O=b.port("GP"))
    yield b.done()


def add_group_carry_wrap(spec: ComponentSpec, context: RuleContext):
    """ADD(w) with group-carry outputs -> plain adder for S plus G/P
    derived from the operands with look-ahead logic over bit g/p.

    Used when a library has adders without G/P pins: generate per-bit
    g = a AND b, p = a OR b, then reduce with a CLA_GEN(w).
    """
    width = spec.width
    if width < 2:
        return
    b = DecompBuilder(spec, f"add{width}_gp_wrap")
    inner = _adder_spec(width, carry_in=True, carry_out=False)
    b.inst("add", inner, A=b.port("A"), B=b.port("B"),
           CI=_ci_endpoint(b, spec, 0), S=b.port("S"))
    g_net = b.net("g_bits", width)
    p_net = b.net("p_bits", width)
    b.inst("g_and", gate_spec("AND", 2, width), I0=b.port("A"), I1=b.port("B"),
           O=g_net)
    b.inst("p_or", gate_spec("OR", 2, width), I0=b.port("A"), I1=b.port("B"),
           O=p_net)
    cla_pins = dict(G=g_net, P=p_net, CI=_ci_endpoint(b, spec, 0),
                    GG=b.port("G"), GP=b.port("P"))
    b.inst("cla", make_spec("CLA_GEN", 1, groups=width), **cla_pins)
    yield b.done()


def rules() -> List[Rule]:
    not_gc = lambda s: not s.get("group_carry", False)
    return [
        Rule("add-ripple-halves", "ADD", add_ripple_halves,
             guard=lambda s: s.width >= 2 and not_gc(s)),
        Rule("add-fa-gates", "ADD", add_full_adder_gates,
             guard=lambda s: s.width == 1 and not_gc(s)),
        Rule("add-cla", "ADD", add_cla,
             guard=lambda s: s.width >= 4),
        Rule("add-carry-select", "ADD", add_carry_select,
             guard=lambda s: s.width >= 8 and not_gc(s)),
        Rule("add-gp-wrap", "ADD", add_group_carry_wrap,
             guard=lambda s: s.get("group_carry", False) and 2 <= s.width <= 8),
        Rule("sub-via-add", "SUB", sub_via_add),
        Rule("addsub-via-add", "ADDSUB", addsub_via_add),
        Rule("addsub-halves", "ADDSUB", addsub_halves,
             guard=lambda s: s.width >= 2),
        Rule("inc-via-add", "INC", inc_via_add),
        Rule("dec-via-add", "DEC", dec_via_add),
        Rule("inc-ha-chain", "INC", inc_half_adder_chain,
             guard=lambda s: not s.get("carry_in", False)),
        Rule("dec-borrow-chain", "DEC", dec_borrow_chain,
             guard=lambda s: not s.get("carry_in", False)),
        Rule("cla-gen-sop", "CLA_GEN", cla_gen_sop),
    ]
