"""Decomposition rules for up/down/load counters.

The structural rule builds next-state logic around a register:

    next = CLOAD ? I0 : (CUP ? q+1 : (CDOWN ? q-1 : q))

with the hold case handled through the register's clock enable.  Two
variants are produced: an adder/subtractor-based increment (fast, maps
onto the library's adders with all their alternatives) and a
half-adder-chain increment (small, slow) when only counting up.
"""

from __future__ import annotations

from typing import List

from repro.core.rules import DecompBuilder, Rule, RuleContext
from repro.core.rulebase.helpers import and2, invert, or2, repl, wide_gate
from repro.core.specs import ComponentSpec, gate_spec, make_spec, register_spec
from repro.netlist.nets import Concat, Const

_DEFAULT_OPS = ("LOAD", "COUNT_UP", "COUNT_DOWN")


def _ops(spec: ComponentSpec):
    return spec.ops or _DEFAULT_OPS


def _style_ok(spec: ComponentSpec) -> bool:
    return spec.get("style", "SYNCHRONOUS") in ("SYNCHRONOUS", None)


def counter_structural(spec: ComponentSpec, context: RuleContext):
    """COUNTER -> register + add/sub next-state logic + control gates."""
    width = spec.width
    ops = _ops(spec)
    has_load = "LOAD" in ops
    has_up = "COUNT_UP" in ops
    has_down = "COUNT_DOWN" in ops
    b = DecompBuilder(spec, f"counter{width}_structural")

    q = b.net("q", width)
    cen = b.port("CEN").ref() if spec.get("enable", False) else Const(1, 1)
    cup = b.port("CUP").ref() if has_up else Const(0, 1)
    cdown = b.port("CDOWN").ref() if has_down else Const(0, 1)
    cload = b.port("CLOAD").ref() if has_load else Const(0, 1)

    # Count value: q +/- 1 through an adder/subtractor (priority: up).
    if has_up and has_down:
        down_eff = and2(b, "down_eff", cdown, invert(b, "nup", cup, 1).ref(), 1)
        counted = b.net("counted", width)
        b.inst("step", make_spec("ADDSUB", width, carry_out=None),
               A=q, B=Const(1, width), M=down_eff, S=counted)
    elif has_up:
        counted = b.net("counted", width)
        b.inst("step", make_spec("INC", width), A=q, S=counted)
    elif has_down:
        counted = b.net("counted", width)
        b.inst("step", make_spec("DEC", width), A=q, S=counted)
    else:
        counted = q

    # Load mux.
    if has_load:
        nxt = b.net("next", width)
        b.inst("m_load", make_spec("MUX", width, n_inputs=2),
               I0=counted, I1=b.port("I0"), S=cload, O=nxt)
    else:
        nxt = counted

    # The register only loads when some operation is active and enabled.
    any_op = wide_gate(b, "any_op", "OR", [cload, cup, cdown], 1)
    load_en = and2(b, "load_en", cen, any_op.ref(), 1)
    reg_attrs = dict(enable=True)
    if spec.get("async_reset", False):
        reg_attrs["async_reset"] = True
    reg = b.inst("r0", make_spec("REG", width, **reg_attrs),
                 D=nxt, CLK=b.port("CLK"), CEN=load_en, Q=q)
    if spec.get("async_reset", False):
        b.connect(reg, "ARST", b.port("ARESET"))

    b.inst("b_out", gate_spec("BUF", width=width), I0=q, O=b.port("O0"))

    if spec.get("carry_out", False):
        # Terminal count: (up and q == max) or (down and q == 0), gated
        # by the enable.
        terms = []
        if has_up:
            all_ones = wide_gate(b, "allones", "AND",
                                 [q[i] for i in range(width)], 1) \
                if width > 1 else q
            terms.append(and2(b, "tc_up", cup, all_ones.ref(), 1).ref())
        if has_down:
            all_zero = wide_gate(b, "allzero", "NOR",
                                 [q[i] for i in range(width)], 1) \
                if width > 1 else invert(b, "nz", q.ref(), 1)
            terms.append(and2(b, "tc_dn", cdown, all_zero.ref(), 1).ref())
        if terms:
            tc = wide_gate(b, "tc", "OR", terms, 1) if len(terms) > 1 else terms[0]
            b.inst("g_co", gate_spec("AND", 2, 1), I0=cen, I1=tc,
                   O=b.port("CO"))
        else:
            b.inst("g_co", gate_spec("BUF", width=1), I0=Const(0, 1),
                   O=b.port("CO"))
    yield b.done()


def counter_cascade(spec: ComponentSpec, context: RuleContext):
    """COUNTER(w) -> chain of narrower counter blocks at the widths the
    target library offers."""
    width = spec.width
    block_widths = [w for w in context.widths_of("COUNTER") if w < width]
    if not block_widths:
        return
    block = max(block_widths)
    if width % block != 0 or width // block < 2:
        return
    yield counter_cascade_netlist(spec, block)


def counter_cascade_netlist(spec: ComponentSpec, block: int):
    """Build the cascade netlist for ``block``-bit counter stages, each
    stage enabled when every lower stage is at its terminal count (or a
    load is requested).  This is how data-book counters like a 4-bit
    synchronous counter cascade."""
    width = spec.width
    ops = _ops(spec)
    n_blocks = width // block
    has_load = "LOAD" in ops
    b = DecompBuilder(spec, f"counter{width}_cascade{block}")
    cen = b.port("CEN").ref() if spec.get("enable", False) else Const(1, 1)
    cload = b.port("CLOAD").ref() if has_load else Const(0, 1)

    block_spec = make_spec(
        "COUNTER", block, ops=ops, style=spec.get("style", "SYNCHRONOUS"),
        enable=True, carry_out=True,
    )
    chain_en = cen
    last_co = None
    for i in range(n_blocks):
        lo = i * block
        hi = lo + block
        co = b.net(f"co{i}", 1)
        last_co = co
        pins = dict(CLK=b.port("CLK"), CEN=chain_en,
                    O0=b.port("O0")[lo:hi], CO=co)
        if has_load:
            pins["I0"] = b.port("I0")[lo:hi]
            pins["CLOAD"] = cload
        if "COUNT_UP" in ops:
            pins["CUP"] = b.port("CUP")
        if "COUNT_DOWN" in ops:
            pins["CDOWN"] = b.port("CDOWN")
        b.inst(f"cnt{i}", block_spec, **pins)
        if i < n_blocks - 1:
            # Next block advances when this one wraps; loads always pass.
            if has_load:
                load_path = and2(b, f"ld{i}", cen, cload, 1)
                chain_en = or2(b, f"en{i}", co.ref(), load_path.ref(), 1).ref()
            else:
                chain_en = co.ref()
    if spec.get("carry_out", False):
        b.inst("b_co", gate_spec("BUF", width=1), I0=last_co, O=b.port("CO"))
    return b.done()


def rules() -> List[Rule]:
    return [
        Rule("counter-structural", "COUNTER", counter_structural,
             guard=_style_ok),
        Rule("counter-cascade", "COUNTER", counter_cascade,
             guard=lambda s: _style_ok(s) and s.width >= 8,
             library_specific=False),
    ]
