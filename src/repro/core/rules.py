"""The DTAS rule engine.

Functional decomposition "is implemented with a rule-based system that
expands the space of component decompositions" (paper section 5).  A
:class:`Rule` targets one component type, guards on the specification,
and builds one or more decomposition netlists whose modules are
themselves component specifications.  :class:`RuleBase` holds the
generic rules (the paper has 86) plus library-specific rules (the paper
needs 9 for the LSI Logic subset).

:class:`DecompBuilder` is the helper rules use to assemble their
netlists: it creates the netlist with the target spec's own port
signature, and offers compact net/instance wiring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.specs import ComponentSpec, port_signature
from repro.netlist.nets import Concat, Const, Endpoint, Net, NetRef
from repro.netlist.netlist import ModuleInst, Netlist

PinValue = Union[Net, NetRef, Const, Concat, int, Sequence]


class RuleContext:
    """What a rule may consult while building decompositions.

    ``library`` is the target cell library (library-specific rules read
    available widths from it; generic rules should not need it).
    """

    def __init__(self, library=None) -> None:
        self.library = library

    def widths_of(self, ctype: str) -> List[int]:
        """Widths the target library offers for a component type."""
        if self.library is None:
            return []
        return self.library.widths_of_ctype(ctype)


@dataclass
class Rule:
    """One functional-decomposition rule.

    ``builder`` returns an iterable of decomposition netlists for the
    spec (most rules return one; style rules may return several).
    ``library_specific`` marks the rules that encode knowledge about a
    particular data book (the paper's "nine library-specific design
    rules").
    """

    name: str
    ctype: str
    builder: Callable[[ComponentSpec, RuleContext], Iterable[Netlist]]
    guard: Optional[Callable[[ComponentSpec], bool]] = None
    library_specific: bool = False
    description: str = ""

    def applies_to(self, spec: ComponentSpec) -> bool:
        if spec.ctype != self.ctype:
            return False
        if self.guard is not None and not self.guard(spec):
            return False
        return True

    def apply(self, spec: ComponentSpec, context: RuleContext) -> List[Netlist]:
        netlists = list(self.builder(spec, context))
        for netlist in netlists:
            netlist.doc = netlist.doc or self.name
        return netlists


class RuleBase:
    """An ordered collection of decomposition rules."""

    def __init__(self, name: str = "dtas-rules") -> None:
        self.name = name
        self._rules: List[Rule] = []
        self._names: Dict[str, Rule] = {}

    def add(self, rule: Rule) -> None:
        if rule.name in self._names:
            raise ValueError(f"duplicate rule name {rule.name!r}")
        self._rules.append(rule)
        self._names[rule.name] = rule

    def extend(self, rules: Iterable[Rule]) -> None:
        for rule in rules:
            self.add(rule)

    def rule(self, name: str) -> Rule:
        return self._names[name]

    def rules_for(self, spec: ComponentSpec) -> List[Rule]:
        return [rule for rule in self._rules if rule.applies_to(spec)]

    def generic_rules(self) -> List[Rule]:
        return [rule for rule in self._rules if not rule.library_specific]

    def library_rules(self) -> List[Rule]:
        return [rule for rule in self._rules if rule.library_specific]

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self):
        return iter(self._rules)

    def __repr__(self) -> str:
        return (
            f"RuleBase({self.name!r}, generic={len(self.generic_rules())}, "
            f"library={len(self.library_rules())})"
        )


class DecompBuilder:
    """Fluent construction of one decomposition netlist.

    The netlist's own ports are created from the target specification's
    port signature, so every decomposition automatically has the same
    interface as the component it implements.
    """

    def __init__(self, spec: ComponentSpec, name: str) -> None:
        self.spec = spec
        self.netlist = Netlist(name)
        self.netlist.add_ports(port_signature(spec))

    # ------------------------------------------------------------------
    def port(self, name: str) -> Net:
        """Backing net of one of the decomposition's ports."""
        return self.netlist.port_net(name)

    def has_port(self, name: str) -> bool:
        return self.netlist.has_port(name)

    def net(self, name: str, width: int = 1) -> Net:
        return self.netlist.add_net(name, width)

    def nets(self, prefix: str, count: int, width: int = 1) -> List[Net]:
        return [self.net(f"{prefix}{i}", width) for i in range(count)]

    def inst(self, name: str, spec: ComponentSpec, **pins: PinValue) -> ModuleInst:
        """Instantiate a module spec and wire its pins.

        Pin values may be nets, slices, constants, integers (interpreted
        as constants of the pin's width), or sequences (concatenated
        LSB-first).
        """
        module = self.netlist.add_module(name, spec, port_signature(spec))
        for pin, value in pins.items():
            module.connect(pin, self._endpoint(value, module.port(pin).width))
        return module

    def connect(self, module: ModuleInst, pin: str, value: PinValue) -> None:
        module.connect(pin, self._endpoint(value, module.port(pin).width))

    def _endpoint(self, value: PinValue, width: int) -> Endpoint:
        if isinstance(value, Net):
            return value.ref()
        if isinstance(value, (NetRef, Const, Concat)):
            return value
        if isinstance(value, bool):
            return Const(int(value), width)
        if isinstance(value, int):
            return Const(value, width)
        if isinstance(value, (list, tuple)):
            parts = tuple(self._endpoint(v, _part_width(v)) for v in value)
            return Concat(parts)
        raise TypeError(f"cannot convert {value!r} to an endpoint")

    def done(self) -> Netlist:
        return self.netlist


def _part_width(value: PinValue) -> int:
    if isinstance(value, Net):
        return value.width
    if isinstance(value, (NetRef, Const, Concat)):
        return value.width
    if isinstance(value, (int, bool)):
        return 1  # bare ints inside concats are single bits
    if isinstance(value, (list, tuple)):
        return sum(_part_width(v) for v in value)
    raise TypeError(f"cannot size {value!r}")


def even_splits(width: int, part: int) -> List[Tuple[int, int]]:
    """(lsb, width) chunks covering ``width`` bits in ``part``-bit
    groups, LSB first; the final chunk may be narrower."""
    chunks = []
    lsb = 0
    while lsb < width:
        chunk = min(part, width - lsb)
        chunks.append((lsb, chunk))
        lsb += chunk
    return chunks
