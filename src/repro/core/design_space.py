"""The DTAS design space: an acyclic graph of specifications and
alternative implementations.

From the paper (section 5): "Functional decomposition is implemented
with a rule-based system that expands the space of component
decompositions.  This design space is represented as an acyclic graph.
Nodes consist of component specifications and alternative component
implementations.  Each component implementation corresponds to a
library cell or to a netlist of modules."

Expansion interleaves rule application with technology mapping: every
specification node is first matched against the cell library
(:mod:`repro.core.mapper`), then decomposed by every applicable rule,
recursing into the module specifications of each decomposition.

Evaluation computes, bottom-up, the set of costed
:class:`~repro.core.configs.Configuration` alternatives per node, with
both search controls applied:

- S1 (implementation consistency) through choice-map merging, and
- S2 (performance filtering) through the node-level filter.

The evaluation inner loop is engineered for the paper's scale claim
(hundreds of thousands to millions of raw alternatives):

- each decomposition netlist is compiled once into a
  :class:`~repro.netlist.timing_program.TimingProgram` (graph
  structure, wiring arcs, and per-arc-signature topological orders),
  so costing a combination only substitutes delay weights;
- the S1 cross product is *streamed*
  (:func:`~repro.core.configs.iter_compatible`), so ``max_combinations``
  bounds the enumeration work itself, and sibling specs that cannot
  conflict skip choice-map checks entirely;
- rule applications, cell matchings, and compiled programs are pure
  functions of (rule, spec, library) and are cached process-wide, so
  repeated syntheses (benchmarks, serving, LOLA retargeting sweeps)
  skip re-expansion;
- with ``jobs > 1`` the expanded spec graph is topologically
  partitioned into independent subtrees and evaluated concurrently
  (:mod:`repro.core.parallel`); configurations are interned process-wide
  (:mod:`repro.core.interning`), so the parallel engine produces
  bit-identical results to the sequential walk;
- ``recost``/``rebind_library`` support incremental re-evaluation: a
  LOLA retarget keeps the decomposition skeleton and its compiled
  timing programs and re-costs only rebound leaves and their
  dependents;
- with an attached node store (:mod:`repro.nodestore`, via
  :meth:`DesignSpace.attach_node_store`), every decomposition node's
  filtered option list is probed in a persistent content-addressed
  cache before its S1 cross product runs and published after --
  subtree-level work sharing across requests, processes, and fork
  workers, bit-identical to plain evaluation.
"""

from __future__ import annotations

import os
import threading
import time
import weakref
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from array import array

from repro.core.configs import (
    Configuration,
    enumerate_rows,
    iter_compatible,
    make_configuration,
    make_configuration_parts,
    resolve_order,
)
from repro.core.filters import ParetoFilter, PerformanceFilter
from repro.core.mapper import CellBinding, matching_cells
from repro.core.rules import RuleBase, RuleContext
from repro.core.specs import ComponentSpec
from repro.netlist.netlist import Netlist
from repro.netlist.timing_program import TimingProgram
from repro.netlist.validate import NetlistError, validate_netlist

if False:  # typing only; avoids a circular import with repro.techlib
    from repro.techlib.cells import CellLibrary


class SynthesisError(Exception):
    """No implementation exists for a specification; the message names
    the leaf specifications that could not be implemented."""


#: Default combination-costing block size (``DesignSpace(batch=...)``).
#: Big enough that the per-block numpy dispatch and layout costs
#: amortize, small enough that per-slot weight matrices stay cache
#: friendly; kernels additionally chunk internally so wide netlists
#: cannot blow memory whatever the block size.
DEFAULT_BATCH = 256


# ---------------------------------------------------------------------------
# Process-wide expansion caches.
#
# Rule application and cell matching are pure functions of
# (rule builder, spec, library) / (spec, library): builders derive the
# decomposition from the frozen spec plus the library's width catalog,
# and nothing in the system mutates a rule-produced netlist after
# construction.  Every DTAS instance used to redo this work from
# scratch -- and a benchmark or serving process creates many instances
# over the same rulebase and library.  Caches are keyed *per library
# object* through a WeakKeyDictionary, so retiring a library (e.g. a
# LOLA retargeting sweep building one library per data book) releases
# its entire expansion state; within a library, keys hold the
# builder/spec objects themselves, so entries can never alias across
# distinct objects with reused addresses.
# ---------------------------------------------------------------------------

_EXPANSION_CACHES: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

# Guards node_stats increments (the thread backend's workers probe and
# publish concurrently; an unguarded `+= 1` drops increments).  Module
# level rather than per-space so the fork backend can re-arm it: a fork
# can snapshot the lock held, and the child has no owner thread to
# release it.
_NODE_STATS_LOCK = threading.Lock()


def _reinit_node_stats_lock() -> None:
    global _NODE_STATS_LOCK
    _NODE_STATS_LOCK = threading.Lock()


if hasattr(os, "register_at_fork"):  # POSIX: keep forked workers safe
    os.register_at_fork(after_in_child=_reinit_node_stats_lock)


class _LibraryCache:
    __slots__ = ("rules", "validated", "cells")

    def __init__(self) -> None:
        self.rules: Dict[tuple, List[Netlist]] = {}
        self.validated: set = set()
        self.cells: Dict[ComponentSpec, List[CellBinding]] = {}


def _library_cache(library) -> _LibraryCache:
    cache = _EXPANSION_CACHES.get(library)
    if cache is None:
        cache = _EXPANSION_CACHES[library] = _LibraryCache()
    return cache


def _cached_rule_netlists(rule, spec: ComponentSpec, context: RuleContext,
                          validate: bool) -> List[Netlist]:
    cache = _library_cache(context.library)
    key = (rule.builder, spec)
    netlists = cache.rules.get(key)
    if netlists is None:
        netlists = cache.rules[key] = rule.apply(spec, context)
    if validate and key not in cache.validated:
        for netlist in netlists:
            validate_netlist(netlist)
        cache.validated.add(key)
    return netlists


def _cached_matching_cells(spec: ComponentSpec, library) -> List[CellBinding]:
    cache = _library_cache(library)
    bindings = cache.cells.get(spec)
    if bindings is None:
        bindings = cache.cells[spec] = matching_cells(spec, library)
    return bindings


def _structure_token(netlist: Netlist) -> Tuple[int, int, int, int]:
    """Cheap fingerprint of a netlist's structure, used to detect (most)
    mutations of a rule-produced netlist.  Rule netlists are shared
    process-wide and must not be mutated (see :class:`Implementation`);
    this token catches added modules/nets/ports/connections as a
    defense-in-depth recompile trigger.  Rewiring an existing pin to a
    different endpoint is not detectable at this cost."""
    return (
        len(netlist.modules),
        len(netlist.nets),
        len(netlist.ports),
        sum(len(m.connections) for m in netlist.modules),
    )


def _spec_timing_program(netlist: Netlist) -> TimingProgram:
    """The netlist's compiled timing program with one slot per distinct
    module spec (S1 forces every instance of a spec onto the same
    configuration).  Attached to the netlist so rule-cache hits across
    DTAS instances share the compiled structure and its kernels.

    Only call this for netlists that are structurally frozen -- rule
    products are; externally supplied netlists may be mutated by their
    owners and must compile a fresh program per evaluation instead."""
    token = _structure_token(netlist)
    program = getattr(netlist, "_spec_timing_program", None)
    if program is None or getattr(netlist, "_spec_timing_token", None) != token:
        program = TimingProgram(netlist, slot_of=lambda inst: inst.spec)
        netlist._spec_timing_program = program
        netlist._spec_timing_token = token
    return program


@dataclass
class Implementation:
    """One alternative implementation of a specification: either a
    library-cell binding or a decomposition netlist.

    ``netlist`` is owned by the process-wide rule cache and shared by
    every DTAS instance over the same library: treat it as read-only.
    Mutating it corrupts later syntheses (a structure fingerprint
    catches additions and forces a recompile, but rewired endpoints are
    not detectable cheaply)."""

    index: int
    spec: ComponentSpec
    kind: str  # "cell" | "decomp"
    binding: Optional[CellBinding] = None
    netlist: Optional[Netlist] = None
    rule_name: str = ""
    #: Compiled timing program for the decomposition netlist, built on
    #: first evaluation and reused for every subsequent combination.
    timing_program: Optional[TimingProgram] = field(
        default=None, repr=False, compare=False
    )

    @property
    def label(self) -> str:
        if self.kind == "cell":
            return f"cell:{self.binding.cell.name}"
        return f"rule:{self.rule_name}"


@dataclass
class SpecNode:
    """A specification node and its alternative implementations."""

    spec: ComponentSpec
    impls: List[Implementation] = field(default_factory=list)
    expanded: bool = False


@dataclass
class DesignTree:
    """A fully-chosen hierarchical design: the paper's 'hierarchical
    netlist that traces the top-down design of the input netlist into
    subcomponents', with leaves bound to library cells."""

    spec: ComponentSpec
    impl: Implementation
    children: Dict[str, "DesignTree"] = field(default_factory=dict)

    @property
    def is_leaf(self) -> bool:
        return self.impl.kind == "cell"

    def cell_counts(self) -> Dict[str, int]:
        """Leaf cell usage, cell name -> count."""
        if self.is_leaf:
            return {self.impl.binding.cell.name: 1}
        totals: Dict[str, int] = {}
        for child in self.children.values():
            for name, count in child.cell_counts().items():
                totals[name] = totals.get(name, 0) + count
        return totals

    def depth(self) -> int:
        if self.is_leaf:
            return 1
        return 1 + max(child.depth() for child in self.children.values())

    def describe(self, indent: int = 0) -> str:
        pad = "  " * indent
        line = f"{pad}{self.spec} <- {self.impl.label}"
        lines = [line]
        if not self.is_leaf:
            for name, child in sorted(self.children.items()):
                lines.append(f"{pad}  [{name}]")
                lines.append(child.describe(indent + 2))
        return "\n".join(lines)


class DesignSpace:
    """Expansion and evaluation of the DTAS design space."""

    def __init__(
        self,
        rulebase: RuleBase,
        library: CellLibrary,
        perf_filter: Optional[PerformanceFilter] = None,
        validate: bool = True,
        max_combinations: int = 20000,
        prune_partial: bool = False,
        jobs: int = 1,
        parallel_backend: str = "thread",
        order: object = "lex",
        batch: Optional[int] = None,
    ) -> None:
        self.rulebase = rulebase
        self.library = library
        self.perf_filter = perf_filter or ParetoFilter()
        self.validate = validate
        self.max_combinations = max_combinations
        #: Opt-in: pre-prune sibling options that are dominated in every
        #: cost dimension by an option with the same choices (see
        #: :func:`repro.core.configs.prune_dominated_options`).
        self.prune_partial = prune_partial
        #: Worker count for parallel subtree evaluation (1 = the
        #: sequential bottom-up walk).
        self.jobs = max(1, int(jobs))
        #: ``"thread"`` (default; safe everywhere) or ``"process"``
        #: (fork-based; real parallelism for the pure-Python inner loop).
        self.parallel_backend = parallel_backend
        #: S1 enumeration order: ``"lex"``, ``"frontier"``, or a
        #: callable reordering one option list (resolved once).
        self.order = resolve_order(order)
        #: Combination-costing block size: with ``batch > 1`` the S1
        #: cross product is costed through the kernels' vectorized
        #: ``run_batch`` path in blocks sharing an arc signature;
        #: ``batch=1`` restores the scalar per-combination loop.  Both
        #: paths are bit-identical (and the knob is therefore excluded
        #: from store/node fingerprints, like ``jobs``).
        self.batch = DEFAULT_BATCH if batch is None else max(1, int(batch))
        #: Total S1-consistent combinations costed by this space (rows
        #: that survived the own-choice conflict check and went through
        #: a timing kernel); benchmarks report combinations/second.
        self.combinations_costed = 0
        self.context = RuleContext(library)
        self.nodes: Dict[ComponentSpec, SpecNode] = {}
        self.failures: Dict[ComponentSpec, str] = {}
        self._configs: Dict[ComponentSpec, List[Configuration]] = {}
        self._count_memo: Dict[ComponentSpec, int] = {}
        #: spec -> specs whose memoized configs were computed from it
        #: (reverse dependencies, recorded during evaluation; drives
        #: :meth:`recost` invalidation).
        self._dependents: Dict[ComponentSpec, Set[ComponentSpec]] = {}
        #: Scheduling counters of the most recent parallel prefill
        #: (None until one runs; see :func:`repro.core.parallel.parallel_prefill`).
        self.last_parallel_stats: Optional[Dict[str, object]] = None
        #: Optional persistent per-node option cache
        #: (:class:`repro.nodestore.NodeStore`); attach with
        #: :meth:`attach_node_store`.  ``None`` = evaluate everything.
        self.node_store = None
        #: The space half of every node fingerprint (None = detached).
        self.node_space_key: Optional[str] = None
        self._node_keys: Dict[ComponentSpec, str] = {}
        #: Per-space node-cache counters (the attached store keeps its
        #: own process-wide totals; these are this space's share).
        #: Increments go through the module-level ``_NODE_STATS_LOCK``.
        self.node_stats: Dict[str, int] = {
            "hits": 0, "misses": 0, "published": 0}
        #: Cumulative per-phase wall time (seconds) spent in this
        #: space: ``expand`` (rule matching + technology mapping),
        #: ``node_probe``/``node_publish`` (the per-node option cache),
        #: ``enumerate_cost`` (the S1 cross product through the timing
        #: kernels), ``filter`` (S2 selection).  Callers snapshot
        #: before/after a request to get that request's breakdown
        #: (:meth:`snapshot_phases`); increments go through the same
        #: lock as ``node_stats``.  Never nested: ``expand`` recursion
        #: is guarded per thread, and the other phases do not re-enter
        #: (child subtrees are evaluated in their own ``configs``
        #: calls), so summing phases never double-counts.
        self.phase_seconds: Dict[str, float] = {}
        # Re-entrancy guards are per *thread*: the parallel evaluator
        # runs `configs` from worker threads, and a spec mid-evaluation
        # on another thread is concurrent work, not a decomposition
        # cycle.
        self._tls = threading.local()

    def _phase_add(self, phase: str, seconds: float) -> None:
        with _NODE_STATS_LOCK:
            self.phase_seconds[phase] = (
                self.phase_seconds.get(phase, 0.0) + seconds)

    def snapshot_phases(self) -> Dict[str, float]:
        """A point-in-time copy of the cumulative phase clocks;
        subtract two snapshots for one request's breakdown."""
        with _NODE_STATS_LOCK:
            return dict(self.phase_seconds)

    @property
    def _expanding(self) -> set:
        guard = getattr(self._tls, "expanding", None)
        if guard is None:
            guard = self._tls.expanding = set()
        return guard

    @property
    def _evaluating(self) -> set:
        guard = getattr(self._tls, "evaluating", None)
        if guard is None:
            guard = self._tls.evaluating = set()
        return guard

    # ------------------------------------------------------------------
    # expansion (rules + technology mapping)
    # ------------------------------------------------------------------
    def expand(self, spec: ComponentSpec) -> SpecNode:
        """Expand a specification node (idempotent)."""
        node = self.nodes.get(spec)
        if node is not None and node.expanded:
            return node
        if node is None:
            node = SpecNode(spec)
            self.nodes[spec] = node
        if spec in self._expanding:
            return node  # completed by the ancestor call
        # Only the outermost expansion on this thread clocks the
        # "expand" phase: recursive child expansions are inside its
        # window, so timing them too would double-count.
        outermost = not self._expanding
        phase_start = time.perf_counter() if outermost else 0.0
        self._expanding.add(spec)
        try:
            impls: List[Implementation] = []
            for binding in _cached_matching_cells(spec, self.library):
                impls.append(
                    Implementation(len(impls), spec, "cell", binding=binding)
                )
            for rule in self.rulebase.rules_for(spec):
                for netlist in _cached_rule_netlists(
                    rule, spec, self.context, self.validate
                ):
                    impls.append(
                        Implementation(
                            len(impls), spec, "decomp",
                            netlist=netlist, rule_name=rule.name,
                        )
                    )
            node.impls = impls
            node.expanded = True
            for impl in impls:
                if impl.kind == "decomp":
                    for module in impl.netlist.modules:
                        self.expand(module.spec)
        finally:
            self._expanding.discard(spec)
            if outermost:
                self._phase_add("expand",
                                time.perf_counter() - phase_start)
        return node

    # ------------------------------------------------------------------
    # the node cache (subtree-level persistent work sharing)
    # ------------------------------------------------------------------
    def attach_node_store(self, store, space_key: Optional[str]) -> None:
        """Attach a persistent per-node option cache
        (:class:`repro.nodestore.NodeStore`).

        ``space_key`` is the engine-side fingerprint half every node
        key embeds (:func:`repro.nodestore.fingerprint.space_key`); a
        ``None`` key means this space's configuration cannot be
        canonicalized, and the cache stays detached -- node caching is
        an optimization that degrades to plain evaluation, never a
        correctness risk.  The caller owns computing the key because
        only it knows the order *designator* (the space holds the
        resolved callable)."""
        if store is None or space_key is None:
            self.node_store = None
            self.node_space_key = None
        else:
            self.node_store = store
            self.node_space_key = space_key
        self._node_keys = {}

    def _node_key(self, spec: ComponentSpec) -> str:
        key = self._node_keys.get(spec)
        if key is None:
            from repro.nodestore.fingerprint import node_key

            key = self._node_keys[spec] = node_key(self.node_space_key, spec)
        return key

    @staticmethod
    def _node_cacheable(node: SpecNode) -> bool:
        """Only nodes with at least one decomposition are cached:
        their option lists cost an S1 cross product plus structural
        timing to rebuild, while a pure-cell node's list is one
        configuration per binding -- cheaper to recompute than to
        round-trip through JSON, and caching it would multiply entry
        counts by the gate leaves every subtree shares."""
        return any(impl.kind == "decomp" for impl in node.impls)

    def _node_cache_probe(
        self, spec: ComponentSpec, node: SpecNode
    ) -> Optional[List[Configuration]]:
        """A cache-served option list for ``spec``, or None.

        A hit returns canonical interned configurations in the exact
        order a fresh evaluation would produce (list order is part of
        the persisted payload), and records the same reverse-dependency
        edges evaluation would have, so :meth:`recost` invalidation
        keeps working over cache-served subtrees.  The children
        themselves are *not* evaluated -- that is the entire saving --
        but they are already expanded, so per-request statistics and
        materialization are unchanged."""
        if not node.impls or not self._node_cacheable(node):
            return None
        phase_start = time.perf_counter()
        try:
            options = self.node_store.load_options(
                self._node_key(spec), spec, expected_impls=len(node.impls),
                space_key=self.node_space_key)
            if options is None:
                with _NODE_STATS_LOCK:
                    self.node_stats["misses"] += 1
                return None
            with _NODE_STATS_LOCK:
                self.node_stats["hits"] += 1
            for impl in node.impls:
                if impl.kind == "decomp":
                    for module in impl.netlist.modules:
                        self._dependents.setdefault(
                            module.spec, set()).add(spec)
            return options
        finally:
            self._phase_add("node_probe",
                            time.perf_counter() - phase_start)

    def _node_cache_publish(
        self, spec: ComponentSpec, node: SpecNode,
        selected: List[Configuration],
    ) -> None:
        if not selected or not self._node_cacheable(node):
            return
        phase_start = time.perf_counter()
        try:
            programs = sum(
                1 for impl in node.impls if impl.timing_program is not None)
            if self.node_store.save_options(
                self._node_key(spec), spec, selected,
                impls=len(node.impls), programs=programs,
                space_key=self.node_space_key,
            ):
                with _NODE_STATS_LOCK:
                    self.node_stats["published"] += 1
        finally:
            self._phase_add("node_publish",
                            time.perf_counter() - phase_start)

    # ------------------------------------------------------------------
    # evaluation (costed configurations with S1 + S2)
    # ------------------------------------------------------------------
    def configs(self, spec: ComponentSpec) -> List[Configuration]:
        """Filtered configurations for a specification (memoized).

        With a node store attached, the persistent cache is probed
        after expansion and before evaluation, and freshly computed
        lists are published back -- so a different request (or another
        worker process) that already evaluated this subtree spares this
        one the S1 cross product entirely."""
        cached = self._configs.get(spec)
        if cached is not None:
            return cached
        if spec in self._evaluating:
            # A decomposition cycle: treat as unimplementable through
            # this path; the offending implementation is dropped.
            return []
        node = self.expand(spec)
        self._evaluating.add(spec)
        try:
            if self.node_store is not None:
                loaded = self._node_cache_probe(spec, node)
                if loaded is not None:
                    self._configs[spec] = loaded
                    return loaded
            candidates: List[Configuration] = []
            for impl in node.impls:
                candidates.extend(self._impl_configs(spec, impl))
            selected = self._select(candidates)
            if not selected:
                self.failures.setdefault(
                    spec,
                    "no matching cell and no applicable rule"
                    if not node.impls
                    else "all implementations failed downstream",
                )
            self._configs[spec] = selected
            if self.node_store is not None:
                self._node_cache_publish(spec, node, selected)
            return selected
        finally:
            self._evaluating.discard(spec)

    def _select(self, candidates: List[Configuration]) -> List[Configuration]:
        """Apply the performance filter, preferring its single-pass
        block path (``select_block``) when batching is on.  Both paths
        return bit-identical survivors in identical order; third-party
        filters without ``select_block`` fall back to ``select``."""
        phase_start = time.perf_counter()
        try:
            if self.batch > 1:
                block = getattr(self.perf_filter, "select_block", None)
                if block is not None:
                    return block(candidates)
            return self.perf_filter.select(candidates)
        finally:
            self._phase_add("filter", time.perf_counter() - phase_start)

    def _impl_configs(
        self, spec: ComponentSpec, impl: Implementation
    ) -> List[Configuration]:
        if impl.kind == "cell":
            cell = impl.binding.cell
            return [
                make_configuration(
                    cell.area, cell.delay_matrix(), {spec: impl.index}
                )
            ]
        return self._decomp_configs(spec, impl)

    def _decomp_configs(
        self, spec: ComponentSpec, impl: Implementation
    ) -> List[Configuration]:
        netlist = impl.netlist
        distinct_specs = list(dict.fromkeys(m.spec for m in netlist.modules))
        option_lists = []
        for sub in distinct_specs:
            self._dependents.setdefault(sub, set()).add(spec)
            options = self.configs(sub)
            if not options:
                return []  # some module is unimplementable
            option_lists.append(options)

        program = impl.timing_program
        if program is None:
            program = impl.timing_program = _spec_timing_program(netlist)

        return self._evaluate_combinations(
            program, option_lists, {spec: impl.index}
        )

    def _evaluate_combinations(
        self,
        program: TimingProgram,
        option_lists: List[List[Configuration]],
        own_choice: Optional[Dict[ComponentSpec, int]],
    ) -> List[Configuration]:
        """Cost every S1-consistent combination of module options.

        The combiner enforces ``max_combinations`` during enumeration;
        the compiled timing program substitutes each combination's
        delay weights into the prebuilt graph.  With ``batch > 1`` the
        combinations are materialized as rows, grouped by arc signature,
        and costed through the kernels' vectorized block path --
        bit-identical results in the identical order.
        """
        phase_start = time.perf_counter()
        if self.batch > 1:
            try:
                return self._evaluate_combinations_batched(
                    program, option_lists, own_choice)
            finally:
                self._phase_add("enumerate_cost",
                                time.perf_counter() - phase_start)
        results: List[Configuration] = []
        for chosen, merged in iter_compatible(
            option_lists,
            limit=self.max_combinations,
            prune_dominated=self.prune_partial,
            order=self.order,
        ):
            choices = dict(merged)
            if own_choice is not None:
                conflict = False
                for own_spec, own_impl in own_choice.items():
                    existing = choices.get(own_spec)
                    if existing is not None and existing != own_impl:
                        conflict = True
                        break
                    choices[own_spec] = own_impl
                if conflict:
                    continue
            area = program.total_area([c.area for c in chosen])
            delays = program.evaluate(
                tuple(c.arc_keys for c in chosen),
                [c.delay_values for c in chosen],
            )
            results.append(make_configuration(area, delays, choices))
        self.combinations_costed += len(results)
        self._phase_add("enumerate_cost",
                        time.perf_counter() - phase_start)
        return results

    def _evaluate_combinations_batched(
        self,
        program: TimingProgram,
        option_lists: List[List[Configuration]],
        own_choice: Optional[Dict[ComponentSpec, int]],
    ) -> List[Configuration]:
        """Vectorized combination costing: materialize the (capped) S1
        rows, group them by arc signature, push each group's delay
        weights through ``run_batch`` as flat matrices, and rebuild the
        configurations from the presorted parts.  Results land back in
        enumeration order, so output is byte-identical to the scalar
        loop."""
        rows = enumerate_rows(
            option_lists,
            limit=self.max_combinations,
            prune_dominated=self.prune_partial,
            order=self.order,
            own_choice=own_choice,
        )
        results: List[Optional[Configuration]] = [None] * len(rows)
        # Group rows by arc signature through small per-slot integer
        # ids (hashing the nested string-tuple signatures per row is
        # measurable; hashing a tuple of small ints is not).  The same
        # per-slot pass precomputes id -> (delay values, area) so the
        # chunk loops below never touch a property per row.
        arc_ids: Dict[tuple, int] = {}
        slot_maps: List[Dict[int, int]] = []
        value_maps: List[Dict[int, tuple]] = []
        area_maps: List[Dict[int, float]] = []
        for options in option_lists:
            slot_map: Dict[int, int] = {}
            value_map: Dict[int, tuple] = {}
            area_map: Dict[int, float] = {}
            for config in options:
                keys = config.arc_keys
                arc_id = arc_ids.get(keys)
                if arc_id is None:
                    arc_id = arc_ids[keys] = len(arc_ids)
                cid = id(config)
                slot_map[cid] = arc_id
                value_map[cid] = config.delay_values
                area_map[cid] = config.area
            slot_maps.append(slot_map)
            value_maps.append(value_map)
            area_maps.append(area_map)
        groups: Dict[tuple, List[int]] = {}
        groups_get = groups.get
        for index, row in enumerate(rows):
            if row[1] is None:
                continue  # own-choice conflict: counted, never costed
            key = tuple([slot_maps[slot][id(config)]
                         for slot, config in enumerate(row[0])])
            group = groups_get(key)
            if group is None:
                groups[key] = [index]
            else:
                group.append(index)
        module_slots = program.module_slots
        batch = self.batch
        costed = 0
        for indices in groups.values():
            signature = tuple(
                c.arc_keys for c in rows[indices[0]][0])
            kernel = program.kernel(signature)
            costed += len(indices)
            for start in range(0, len(indices), batch):
                chunk = indices[start:start + batch]
                chosen_rows = [rows[index][0] for index in chunk]
                matrices = []
                for slot in range(len(signature)):
                    buffer = array("d")
                    extend = buffer.extend
                    value_map = value_maps[slot]
                    for chosen in chosen_rows:
                        extend(value_map[id(chosen[slot])])
                    matrices.append(buffer)
                keys, block = kernel.run_batch(matrices, len(chunk))
                for offset, index in enumerate(chunk):
                    chosen = chosen_rows[offset]
                    values = block[offset]
                    # Same float addition sequence as the scalar
                    # path's program.total_area walk.
                    area = 0.0
                    for slot in module_slots:
                        area += area_maps[slot][id(chosen[slot])]
                    results[index] = make_configuration_parts(
                        area,
                        tuple(zip(keys, values)),
                        rows[index][1],
                        max(values) if values else 0.0,
                    )
        self.combinations_costed += costed
        return [config for config in results if config is not None]

    # ------------------------------------------------------------------
    # top-level entry points
    # ------------------------------------------------------------------
    def alternatives(self, spec: ComponentSpec) -> List[Configuration]:
        """Expand and evaluate a single component specification."""
        if self.jobs > 1 and spec not in self._configs:
            from repro.core.parallel import parallel_prefill

            parallel_prefill(self, [spec])
        selected = self.configs(spec)
        if not selected:
            raise SynthesisError(self._failure_message(spec))
        return selected

    def evaluate_netlist(self, netlist: Netlist) -> List[Configuration]:
        """Alternatives for a whole input netlist of GENUS instances.

        The netlist is treated exactly like a decomposition: one
        configuration per S1-consistent, filter-surviving combination
        of module implementations, costed with structural timing.
        """
        distinct_specs = list(dict.fromkeys(m.spec for m in netlist.modules))
        if self.jobs > 1 and any(s not in self._configs for s in distinct_specs):
            from repro.core.parallel import parallel_prefill

            parallel_prefill(self, distinct_specs)
        option_lists = []
        for sub in distinct_specs:
            options = self.configs(sub)
            if not options:
                raise SynthesisError(self._failure_message(sub))
            option_lists.append(options)
        # The caller owns this netlist and may mutate it between calls,
        # so compile a fresh program per evaluation (one compile per
        # call; every combination within the call still reuses it).
        program = TimingProgram(netlist, slot_of=lambda inst: inst.spec)
        results = self._evaluate_combinations(program, option_lists, None)
        return self._select(results)

    def _failure_message(self, spec: ComponentSpec) -> str:
        self.configs(spec)
        leaves = [
            f"{s} ({why})"
            for s, why in sorted(self.failures.items(), key=lambda kv: str(kv[0]))
            if not self.nodes.get(s) or not self.nodes[s].impls
        ] or [f"{s} ({why})" for s, why in self.failures.items()]
        listing = "; ".join(leaves[:6])
        return f"cannot implement {spec}: {listing}"

    # ------------------------------------------------------------------
    # materialization
    # ------------------------------------------------------------------
    def materialize(self, spec: ComponentSpec, config: Configuration) -> DesignTree:
        """Build the hierarchical design tree a configuration denotes.

        Expands the node on demand: a configuration loaded from the
        result store is served without any engine work, and only if the
        caller then asks for the tree is the (deterministic) expansion
        run, whose implementation indexing the stored choice map was
        recorded against."""
        choice = config.chosen_impl(spec)
        if choice is None:
            raise SynthesisError(f"configuration does not choose an impl for {spec}")
        impl = self.expand(spec).impls[choice]
        tree = DesignTree(spec, impl)
        if impl.kind == "decomp":
            for module in impl.netlist.modules:
                tree.children[module.name] = self.materialize(module.spec, config)
        return tree

    # ------------------------------------------------------------------
    # incremental re-evaluation (LOLA retargeting support)
    # ------------------------------------------------------------------
    def recost(self, specs: Iterable[ComponentSpec]) -> Set[ComponentSpec]:
        """Invalidate memoized configurations for ``specs`` and every
        spec whose results were computed from them (transitively, via
        the reverse-dependency index recorded during evaluation).

        Expansion state -- spec nodes, implementations, decomposition
        netlists, and their compiled timing programs -- is untouched,
        so the next ``configs`` call re-costs the invalidated subtrees
        over the shared skeleton instead of rebuilding it.

        An attached node cache is *not* dropped here: its entries are
        content-addressed by (library, rulebase, search controls), and
        under an unchanged key re-serving them is exactly the recompute
        this method schedules.  The one caller that does change the
        underlying costs, :meth:`rebind_library`, detaches the cache
        itself.
        """
        queue = list(specs)
        invalidated: Set[ComponentSpec] = set()
        while queue:
            spec = queue.pop()
            if spec in invalidated:
                continue
            invalidated.add(spec)
            self._configs.pop(spec, None)
            self.failures.pop(spec, None)
            queue.extend(self._dependents.get(spec, ()))
        return invalidated

    def rebind_library(self, library) -> Dict[str, int]:
        """Incrementally retarget this design space to a new cell
        library: recompute the cell bindings of every expanded node
        against ``library``, keep every decomposition implementation
        and its compiled timing program (the shared skeleton), and
        invalidate all memoized costs.

        Only the *leaves* are rebound -- decomposition structure was
        derived under the old library's width catalog and is reused
        as-is, which is exactly the incremental contract: a fresh
        expansion against the new library may discover different
        decompositions.  Previously returned configurations refer to
        the old implementation indexing and must not be materialized
        afterwards.

        Returns counters: expanded nodes visited, nodes whose cell
        binding set changed, and decomposition programs preserved.

        Rebinding detaches any attached node cache: the rebound space
        keeps the *old* library's decomposition skeleton, so its
        results are a session-local approximation that must neither be
        published under the new library's node keys nor satisfied from
        entries that were (the same reasoning that detaches the result
        store on ``Session.retarget``).
        """
        self.attach_node_store(None, None)
        rebound = 0
        programs_kept = 0
        for spec, node in self.nodes.items():
            if not node.expanded:
                continue
            old_cells = [impl for impl in node.impls if impl.kind == "cell"]
            decomps = [impl for impl in node.impls if impl.kind == "decomp"]
            impls: List[Implementation] = []
            for binding in _cached_matching_cells(spec, library):
                impls.append(
                    Implementation(len(impls), spec, "cell", binding=binding)
                )
            new_names = [impl.binding.cell.name for impl in impls]
            old_names = [impl.binding.cell.name for impl in old_cells]
            if new_names != old_names:
                rebound += 1
            for impl in decomps:
                impl.index = len(impls)
                impls.append(impl)
                if impl.timing_program is not None:
                    programs_kept += 1
            node.impls = impls
        self.library = library
        self.context = RuleContext(library)
        invalidated = self.recost(list(self.nodes))
        self._count_memo.clear()
        return {
            "nodes": len(self.nodes),
            "rebound_nodes": rebound,
            "invalidated": len(invalidated),
            "programs_kept": programs_kept,
        }

    # ------------------------------------------------------------------
    # statistics (paper section 5 sizing claims)
    # ------------------------------------------------------------------
    def unconstrained_size(self, spec: ComponentSpec) -> int:
        """Size of the design space *without* search control: 'the
        product of the number of alternative implementations for each
        module in the netlist', summed over this spec's alternatives."""
        memo = self._count_memo
        in_progress: set = set()

        def count(s: ComponentSpec) -> int:
            if s in memo:
                return memo[s]
            if s in in_progress:
                return 0
            node = self.expand(s)
            in_progress.add(s)
            total = 0
            for impl in node.impls:
                if impl.kind == "cell":
                    total += 1
                else:
                    product = 1
                    for module in impl.netlist.modules:
                        sub = count(module.spec)
                        if sub == 0:
                            product = 0
                            break
                        product *= sub
                    total += product
            in_progress.discard(s)
            memo[s] = total
            return total

        return count(spec)

    def stats(self) -> Dict[str, int]:
        return {
            "spec_nodes": len(self.nodes),
            "implementations": sum(len(n.impls) for n in self.nodes.values()),
            "cell_bindings": sum(
                1 for n in self.nodes.values() for i in n.impls if i.kind == "cell"
            ),
            "decompositions": sum(
                1 for n in self.nodes.values() for i in n.impls if i.kind == "decomp"
            ),
        }

    def reachable_nodes(self, roots: Iterable[ComponentSpec]) -> List[SpecNode]:
        """The expanded nodes reachable from ``roots`` through
        decomposition module specs -- the subgraph one request
        actually touches, independent of whatever else this space
        evaluated.  The single traversal behind every per-request
        statistic (:meth:`stats_for`, the store's timing metadata), so
        the notion of "reachable" cannot drift between them."""
        seen: Set[ComponentSpec] = set()
        queue = list(roots)
        found: List[SpecNode] = []
        while queue:
            spec = queue.pop()
            if spec in seen:
                continue
            seen.add(spec)
            node = self.nodes.get(spec)
            if node is None:
                continue
            found.append(node)
            for impl in node.impls:
                if impl.kind == "decomp":
                    queue.extend(m.spec for m in impl.netlist.modules)
        return found

    def stats_for(self, roots: Iterable[ComponentSpec]) -> Dict[str, int]:
        """:meth:`stats` restricted to the subgraph reachable from
        ``roots`` -- a *deterministic function of the request*, unlike
        the whole-space counts, which depend on whatever else the
        session evaluated before.  Per-job stats (and therefore stored
        result payloads and served JSON bodies) use this, so a batch
        session, the serve pool, and a fresh single-request process all
        report identical numbers for the same request.  For a
        single-request space the two views coincide: expansion only
        creates nodes reachable from the root."""
        nodes = self.reachable_nodes(roots)
        return {
            "spec_nodes": len(nodes),
            "implementations": sum(len(n.impls) for n in nodes),
            "cell_bindings": sum(
                1 for n in nodes for i in n.impls if i.kind == "cell"),
            "decompositions": sum(
                1 for n in nodes for i in n.impls if i.kind == "decomp"),
        }
