"""The DTAS design space: an acyclic graph of specifications and
alternative implementations.

From the paper (section 5): "Functional decomposition is implemented
with a rule-based system that expands the space of component
decompositions.  This design space is represented as an acyclic graph.
Nodes consist of component specifications and alternative component
implementations.  Each component implementation corresponds to a
library cell or to a netlist of modules."

Expansion interleaves rule application with technology mapping: every
specification node is first matched against the cell library
(:mod:`repro.core.mapper`), then decomposed by every applicable rule,
recursing into the module specifications of each decomposition.

Evaluation computes, bottom-up, the set of costed
:class:`~repro.core.configs.Configuration` alternatives per node, with
both search controls applied:

- S1 (implementation consistency) through choice-map merging, and
- S2 (performance filtering) through the node-level filter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.configs import (
    Configuration,
    combine_compatible,
    make_configuration,
    merge_choices,
)
from repro.core.filters import ParetoFilter, PerformanceFilter
from repro.core.mapper import CellBinding, matching_cells
from repro.core.rules import RuleBase, RuleContext
from repro.core.specs import ComponentSpec
from repro.netlist.netlist import ModuleInst, Netlist
from repro.netlist.timing import port_delay_matrix
from repro.netlist.validate import NetlistError, validate_netlist

if False:  # typing only; avoids a circular import with repro.techlib
    from repro.techlib.cells import CellLibrary


class SynthesisError(Exception):
    """No implementation exists for a specification; the message names
    the leaf specifications that could not be implemented."""


@dataclass
class Implementation:
    """One alternative implementation of a specification: either a
    library-cell binding or a decomposition netlist."""

    index: int
    spec: ComponentSpec
    kind: str  # "cell" | "decomp"
    binding: Optional[CellBinding] = None
    netlist: Optional[Netlist] = None
    rule_name: str = ""

    @property
    def label(self) -> str:
        if self.kind == "cell":
            return f"cell:{self.binding.cell.name}"
        return f"rule:{self.rule_name}"


@dataclass
class SpecNode:
    """A specification node and its alternative implementations."""

    spec: ComponentSpec
    impls: List[Implementation] = field(default_factory=list)
    expanded: bool = False


@dataclass
class DesignTree:
    """A fully-chosen hierarchical design: the paper's 'hierarchical
    netlist that traces the top-down design of the input netlist into
    subcomponents', with leaves bound to library cells."""

    spec: ComponentSpec
    impl: Implementation
    children: Dict[str, "DesignTree"] = field(default_factory=dict)

    @property
    def is_leaf(self) -> bool:
        return self.impl.kind == "cell"

    def cell_counts(self) -> Dict[str, int]:
        """Leaf cell usage, cell name -> count."""
        if self.is_leaf:
            return {self.impl.binding.cell.name: 1}
        totals: Dict[str, int] = {}
        for child in self.children.values():
            for name, count in child.cell_counts().items():
                totals[name] = totals.get(name, 0) + count
        return totals

    def depth(self) -> int:
        if self.is_leaf:
            return 1
        return 1 + max(child.depth() for child in self.children.values())

    def describe(self, indent: int = 0) -> str:
        pad = "  " * indent
        line = f"{pad}{self.spec} <- {self.impl.label}"
        lines = [line]
        if not self.is_leaf:
            for name, child in sorted(self.children.items()):
                lines.append(f"{pad}  [{name}]")
                lines.append(child.describe(indent + 2))
        return "\n".join(lines)


class DesignSpace:
    """Expansion and evaluation of the DTAS design space."""

    def __init__(
        self,
        rulebase: RuleBase,
        library: CellLibrary,
        perf_filter: Optional[PerformanceFilter] = None,
        validate: bool = True,
        max_combinations: int = 20000,
    ) -> None:
        self.rulebase = rulebase
        self.library = library
        self.perf_filter = perf_filter or ParetoFilter()
        self.validate = validate
        self.max_combinations = max_combinations
        self.context = RuleContext(library)
        self.nodes: Dict[ComponentSpec, SpecNode] = {}
        self.failures: Dict[ComponentSpec, str] = {}
        self._configs: Dict[ComponentSpec, List[Configuration]] = {}
        self._expanding: set = set()
        self._evaluating: set = set()
        self._count_memo: Dict[ComponentSpec, int] = {}

    # ------------------------------------------------------------------
    # expansion (rules + technology mapping)
    # ------------------------------------------------------------------
    def expand(self, spec: ComponentSpec) -> SpecNode:
        """Expand a specification node (idempotent)."""
        node = self.nodes.get(spec)
        if node is not None and node.expanded:
            return node
        if node is None:
            node = SpecNode(spec)
            self.nodes[spec] = node
        if spec in self._expanding:
            return node  # completed by the ancestor call
        self._expanding.add(spec)
        try:
            impls: List[Implementation] = []
            for binding in matching_cells(spec, self.library):
                impls.append(
                    Implementation(len(impls), spec, "cell", binding=binding)
                )
            for rule in self.rulebase.rules_for(spec):
                for netlist in rule.apply(spec, self.context):
                    if self.validate:
                        validate_netlist(netlist)
                    impls.append(
                        Implementation(
                            len(impls), spec, "decomp",
                            netlist=netlist, rule_name=rule.name,
                        )
                    )
            node.impls = impls
            node.expanded = True
            for impl in impls:
                if impl.kind == "decomp":
                    for module in impl.netlist.modules:
                        self.expand(module.spec)
        finally:
            self._expanding.discard(spec)
        return node

    # ------------------------------------------------------------------
    # evaluation (costed configurations with S1 + S2)
    # ------------------------------------------------------------------
    def configs(self, spec: ComponentSpec) -> List[Configuration]:
        """Filtered configurations for a specification (memoized)."""
        cached = self._configs.get(spec)
        if cached is not None:
            return cached
        if spec in self._evaluating:
            # A decomposition cycle: treat as unimplementable through
            # this path; the offending implementation is dropped.
            return []
        node = self.expand(spec)
        self._evaluating.add(spec)
        try:
            candidates: List[Configuration] = []
            for impl in node.impls:
                candidates.extend(self._impl_configs(spec, impl))
            selected = self.perf_filter.select(candidates)
            if not selected:
                self.failures.setdefault(
                    spec,
                    "no matching cell and no applicable rule"
                    if not node.impls
                    else "all implementations failed downstream",
                )
            self._configs[spec] = selected
            return selected
        finally:
            self._evaluating.discard(spec)

    def _impl_configs(
        self, spec: ComponentSpec, impl: Implementation
    ) -> List[Configuration]:
        if impl.kind == "cell":
            cell = impl.binding.cell
            return [
                make_configuration(
                    cell.area, cell.delay_matrix(), {spec: impl.index}
                )
            ]
        return self._decomp_configs(spec, impl)

    def _decomp_configs(
        self, spec: ComponentSpec, impl: Implementation
    ) -> List[Configuration]:
        netlist = impl.netlist
        distinct_specs: List[ComponentSpec] = []
        for module in netlist.modules:
            if module.spec not in distinct_specs:
                distinct_specs.append(module.spec)
        option_lists = []
        for sub in distinct_specs:
            options = self.configs(sub)
            if not options:
                return []  # some module is unimplementable
            option_lists.append(options)

        combos = combine_compatible(option_lists)
        if len(combos) > self.max_combinations:
            combos = combos[: self.max_combinations]

        results: List[Configuration] = []
        for chosen, merged in combos:
            by_spec = dict(zip(distinct_specs, chosen))
            own = merge_choices([merged, {spec: impl.index}])
            if own is None:
                continue
            area = sum(by_spec[m.spec].area for m in netlist.modules)
            delays = port_delay_matrix(
                netlist, lambda inst: by_spec[inst.spec].delay_matrix()
            )
            results.append(make_configuration(area, delays, own))
        return results

    # ------------------------------------------------------------------
    # top-level entry points
    # ------------------------------------------------------------------
    def alternatives(self, spec: ComponentSpec) -> List[Configuration]:
        """Expand and evaluate a single component specification."""
        selected = self.configs(spec)
        if not selected:
            raise SynthesisError(self._failure_message(spec))
        return selected

    def evaluate_netlist(self, netlist: Netlist) -> List[Configuration]:
        """Alternatives for a whole input netlist of GENUS instances.

        The netlist is treated exactly like a decomposition: one
        configuration per S1-consistent, filter-surviving combination
        of module implementations, costed with structural timing.
        """
        distinct_specs: List[ComponentSpec] = []
        for module in netlist.modules:
            if module.spec not in distinct_specs:
                distinct_specs.append(module.spec)
        option_lists = []
        for sub in distinct_specs:
            options = self.configs(sub)
            if not options:
                raise SynthesisError(self._failure_message(sub))
            option_lists.append(options)
        combos = combine_compatible(option_lists)
        if len(combos) > self.max_combinations:
            combos = combos[: self.max_combinations]
        results = []
        for chosen, merged in combos:
            by_spec = dict(zip(distinct_specs, chosen))
            area = sum(by_spec[m.spec].area for m in netlist.modules)
            delays = port_delay_matrix(
                netlist, lambda inst: by_spec[inst.spec].delay_matrix()
            )
            results.append(make_configuration(area, delays, merged))
        return self.perf_filter.select(results)

    def _failure_message(self, spec: ComponentSpec) -> str:
        self.configs(spec)
        leaves = [
            f"{s} ({why})"
            for s, why in sorted(self.failures.items(), key=lambda kv: str(kv[0]))
            if not self.nodes.get(s) or not self.nodes[s].impls
        ] or [f"{s} ({why})" for s, why in self.failures.items()]
        listing = "; ".join(leaves[:6])
        return f"cannot implement {spec}: {listing}"

    # ------------------------------------------------------------------
    # materialization
    # ------------------------------------------------------------------
    def materialize(self, spec: ComponentSpec, config: Configuration) -> DesignTree:
        """Build the hierarchical design tree a configuration denotes."""
        choice = config.chosen_impl(spec)
        if choice is None:
            raise SynthesisError(f"configuration does not choose an impl for {spec}")
        impl = self.nodes[spec].impls[choice]
        tree = DesignTree(spec, impl)
        if impl.kind == "decomp":
            for module in impl.netlist.modules:
                tree.children[module.name] = self.materialize(module.spec, config)
        return tree

    # ------------------------------------------------------------------
    # statistics (paper section 5 sizing claims)
    # ------------------------------------------------------------------
    def unconstrained_size(self, spec: ComponentSpec) -> int:
        """Size of the design space *without* search control: 'the
        product of the number of alternative implementations for each
        module in the netlist', summed over this spec's alternatives."""
        memo = self._count_memo
        in_progress: set = set()

        def count(s: ComponentSpec) -> int:
            if s in memo:
                return memo[s]
            if s in in_progress:
                return 0
            node = self.expand(s)
            in_progress.add(s)
            total = 0
            for impl in node.impls:
                if impl.kind == "cell":
                    total += 1
                else:
                    product = 1
                    for module in impl.netlist.modules:
                        sub = count(module.spec)
                        if sub == 0:
                            product = 0
                            break
                        product *= sub
                    total += product
            in_progress.discard(s)
            memo[s] = total
            return total

        return count(spec)

    def stats(self) -> Dict[str, int]:
        return {
            "spec_nodes": len(self.nodes),
            "implementations": sum(len(n.impls) for n in self.nodes.values()),
            "cell_bindings": sum(
                1 for n in self.nodes.values() for i in n.impls if i.kind == "cell"
            ),
            "decompositions": sum(
                1 for n in self.nodes.values() for i in n.impls if i.kind == "decomp"
            ),
        }
