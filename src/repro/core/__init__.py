"""DTAS -- rule-based functional synthesis of generic RTL components.

This package is the paper's primary contribution: it maps netlists of
generic (GENUS) component instances into hierarchical, library-specific
netlists through functional decomposition and technology mapping by
functional matching, with search control via implementation consistency
and performance filters.

Public entry points:

- :class:`repro.core.specs.ComponentSpec` -- the representation language
  shared by generic components and library cells,
- :class:`repro.core.synthesizer.DTAS` -- the synthesis driver,
- :func:`repro.core.synthesizer.synthesize` -- one-call convenience,
- :mod:`repro.core.filters` -- performance filters (search control S2).
"""

from repro.core.specs import ComponentSpec, make_spec, port_signature
from repro.core.filters import (
    KeepAllFilter,
    ParetoFilter,
    PerformanceFilter,
    TopKFilter,
    TradeoffFilter,
)
from repro.core.configs import Configuration
from repro.core.design_space import DesignSpace, Implementation, SpecNode
from repro.core.rules import Rule, RuleBase
from repro.core.synthesizer import DTAS, SynthesisResult, synthesize

__all__ = [
    "ComponentSpec",
    "Configuration",
    "DTAS",
    "DesignSpace",
    "Implementation",
    "KeepAllFilter",
    "ParetoFilter",
    "PerformanceFilter",
    "Rule",
    "RuleBase",
    "SpecNode",
    "SynthesisResult",
    "TopKFilter",
    "TradeoffFilter",
    "make_spec",
    "port_signature",
    "synthesize",
]
