"""DTAS -- rule-based functional synthesis of generic RTL components.

This package is the paper's primary contribution: it maps netlists of
generic (GENUS) component instances into hierarchical, library-specific
netlists through functional decomposition and technology mapping by
functional matching, with search control via implementation consistency
and performance filters.

Public entry points:

- :class:`repro.core.specs.ComponentSpec` -- the representation language
  shared by generic components and library cells,
- :class:`repro.core.synthesizer.DTAS` -- the synthesis driver,
- :func:`repro.core.synthesizer.synthesize` -- one-call convenience,
- :mod:`repro.core.filters` -- performance filters (search control S2).
"""

from repro.core.specs import ComponentSpec, make_spec, port_signature
from repro.core.filters import (
    KeepAllFilter,
    ParetoFilter,
    PerformanceFilter,
    TopKFilter,
    TradeoffFilter,
)
from repro.core.configs import Configuration, pareto_rank_order
from repro.core.design_space import DesignSpace, Implementation, SpecNode
from repro.core.interning import intern_configuration, intern_stats
from repro.core.parallel import parallel_prefill
from repro.core.rules import Rule, RuleBase
from repro.core.synthesizer import DTAS, SynthesisResult, synthesize

# Load the rule-family modules eagerly: DTAS construction otherwise
# pays the module-exec cost of ten rulebase modules inside the first
# synthesis call, which is exactly where serving latency matters.  The
# Rule objects themselves are still built lazily on first DTAS().
# (These imports must come last -- the rule modules import
# repro.core.rules/specs.)
from repro.core import library_rules as _library_rules  # noqa: E402,F401
from repro.core import rulebase as _rulebase  # noqa: E402,F401
from repro.core.rulebase import (  # noqa: E402,F401
    alu as _alu,
    arithmetic as _arithmetic,
    comparators as _comparators,
    counters as _counters,
    encoding as _encoding,
    logic as _logic,
    multipliers as _multipliers,
    routing as _routing,
    shifters as _shifters,
    storage as _storage,
)

__all__ = [
    "ComponentSpec",
    "Configuration",
    "DTAS",
    "DesignSpace",
    "Implementation",
    "KeepAllFilter",
    "ParetoFilter",
    "PerformanceFilter",
    "Rule",
    "RuleBase",
    "SpecNode",
    "SynthesisResult",
    "TopKFilter",
    "TradeoffFilter",
    "intern_configuration",
    "intern_stats",
    "make_spec",
    "pareto_rank_order",
    "parallel_prefill",
    "port_signature",
    "synthesize",
]
