"""Component specifications: the representation language of DTAS.

The paper's key idea for technology mapping is that *library cells and
generic components are described in the same functional representation
language*:

    "The functionality of library cells, i.e., their type, bit-width,
    and other characteristics, is described with the same representation
    language used in recognizing and decomposing GENUS components."

:class:`ComponentSpec` is that language.  A spec is a frozen, hashable
value object: a component type (``ctype``), a bit-width, and a sorted
tuple of attributes.  Hashability is load-bearing: the DTAS design space
is an acyclic graph whose nodes are specs, and the paper's first
search-control principle ("two modules with the same component
specification must be instances of the same implementation") falls out
of using specs as dictionary keys.

:func:`port_signature` derives the full port list of any spec, so that
netlists, simulation, VHDL emission, and timing all agree on interfaces.
"""

from __future__ import annotations

import math
import os
import threading
import weakref
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterable, Optional, Tuple

from repro.netlist.ports import Direction, PinKind, Port

# ---------------------------------------------------------------------------
# Operation names (shared vocabulary with repro.genus.behavior)
# ---------------------------------------------------------------------------

ARITH_OPS = ("ADD", "SUB", "INC", "DEC")
COMPARE_OPS = ("EQ", "NE", "LT", "GT", "LE", "GE", "ZEROP")
LOGIC_OPS = ("AND", "OR", "NAND", "NOR", "XOR", "XNOR", "LNOT", "LIMPL", "BUF")
SHIFT_OPS = ("SHL", "SHR", "ASR", "ROL", "ROR")
COUNTER_OPS = ("LOAD", "COUNT_UP", "COUNT_DOWN")

#: The 16 functions of the paper's Figure-3 ALU, in the paper's order.
ALU16_OPS = (
    "ADD", "SUB", "INC", "DEC",
    "EQ", "LT", "GT", "ZEROP",
    "AND", "OR", "NAND", "NOR",
    "XOR", "XNOR", "LNOT", "LIMPL",
)

GATE_KINDS = ("AND", "OR", "NAND", "NOR", "XOR", "XNOR", "NOT", "BUF")

#: Attributes that are boolean capabilities; values are normalized with
#: bool() so specs built from text (LEGEND, databooks) compare equal to
#: specs built in code.
BOOL_ATTRS = frozenset({
    "carry_in", "carry_out", "group_carry", "enable", "async_reset",
    "async_set", "complement_out", "valid", "cascaded",
})

#: Component types with sequential behavior (clocked state).
SEQUENTIAL_CTYPES = frozenset(
    {"REG", "COUNTER", "REGFILE", "STACK", "FIFO", "MEMORY", "SHIFT_REG"}
)

#: Component types in the GENUS "interface" class.
INTERFACE_CTYPES = frozenset({"PORT", "BUFFER", "TRISTATE", "CLOCK_DRIVER", "SCHMITT"})

#: Component types in the GENUS "miscellaneous" class.
MISC_CTYPES = frozenset({"BUS", "DELAY", "CONCAT", "EXTRACT", "CLOCK_GEN", "WIRED_OR", "CONST"})


def sel_width(n_choices: int) -> int:
    """Number of select bits needed to address ``n_choices`` options."""
    if n_choices < 2:
        return 1
    return max(1, math.ceil(math.log2(n_choices)))


def _freeze(value: Any) -> Hashable:
    """Normalize attribute values into hashable, canonical forms."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(_freeze(v) for v in value))
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, bool) or isinstance(value, (int, str, float)) or value is None:
        return value
    raise TypeError(f"attribute value {value!r} is not hashable-normalizable")


@dataclass(frozen=True)
class ComponentSpec:
    """A functional component specification.

    Use :func:`make_spec` rather than the constructor so attribute
    values are normalized and validated against the catalog.
    """

    ctype: str
    width: int = 1
    attrs: Tuple[Tuple[str, Hashable], ...] = ()

    def __hash__(self) -> int:
        """Field-tuple hash, cached: specs key every design-space dict
        (nodes, configs, choice maps), so the tuple rebuild that the
        generated dataclass hash performs each call is measurable."""
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.ctype, self.width, self.attrs))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __reduce__(self):
        """Pickle by field value only and re-intern on load.

        None of the lazy caches enter the payload (``_hash`` embeds the
        per-process string-hash seed, so shipping it would silently
        break dict lookups in the receiving process), and unpickling
        lands on the canonical interned instance, so specs shipped back
        from worker processes keep the identity fast paths effective."""
        return (_restore_spec, (self.ctype, self.width, self.attrs))

    def get(self, key: str, default: Any = None) -> Any:
        for k, v in self.attrs:
            if k == key:
                return v
        return default

    def has(self, key: str) -> bool:
        return any(k == key for k, _ in self.attrs)

    @property
    def ops(self) -> Tuple[str, ...]:
        """The operation list, for op-bearing specs (ALU, shifter...)."""
        return tuple(self.get("ops", ()))

    @property
    def is_sequential(self) -> bool:
        return self.ctype in SEQUENTIAL_CTYPES

    @property
    def sort_key(self) -> Tuple[str, int, str]:
        """A cheap, total ordering key over specs (computed once per
        spec object).  Attribute values may mix types, so the attrs part
        falls back to ``repr``, which is faithful for the normalized
        primitive/tuple forms :func:`make_spec` stores."""
        cached = self.__dict__.get("_sort_key")
        if cached is None:
            cached = (self.ctype, self.width, repr(self.attrs))
            object.__setattr__(self, "_sort_key", cached)
        return cached

    def with_attrs(self, **changes: Any) -> "ComponentSpec":
        """A copy of this spec with some attributes replaced/added."""
        merged = dict(self.attrs)
        merged.update(changes)
        return make_spec(self.ctype, changes.pop("width", self.width), **merged)

    def describe(self) -> str:
        """Compact one-line form used in reports, e.g.
        ``ALU<64>(ci,co,ops=16)``."""
        parts = []
        for key, value in self.attrs:
            if isinstance(value, bool):
                if value:
                    parts.append(key)
            elif isinstance(value, tuple):
                parts.append(f"{key}={len(value)}")
            else:
                parts.append(f"{key}={value}")
        inner = ",".join(parts)
        return f"{self.ctype}<{self.width}>({inner})"

    def __str__(self) -> str:
        return self.describe()


# Weakly held canonical instances: equal specs built through
# :func:`make_spec` are the *same object*, so the engine's many
# spec-keyed dictionaries (design-space nodes, merged choice maps, the
# S1 combiner's rank tables) resolve lookups on the identity fast path
# instead of falling through to field-tuple comparison.  Identity is an
# optimization only -- nothing relies on it (specs restored from
# pickles or built directly still compare by value).
_SPEC_INTERN: "weakref.WeakValueDictionary" = weakref.WeakValueDictionary()
_SPEC_INTERN_LOCK = threading.Lock()

if hasattr(os, "register_at_fork"):  # a fork can snapshot a held lock
    os.register_at_fork(
        after_in_child=lambda: globals().__setitem__(
            "_SPEC_INTERN_LOCK", threading.Lock()))


def make_spec(ctype: str, width: int = 1, **attrs: Any) -> ComponentSpec:
    """Create a normalized :class:`ComponentSpec`.

    Attribute values are frozen (lists become tuples), ``None`` values
    are dropped, and keys are stored sorted so equal specs compare and
    hash equal regardless of construction order.  The returned instance
    is canonical process-wide (interned weakly by value).
    """
    if width < 1:
        raise ValueError(f"{ctype}: width must be >= 1, got {width}")
    cleaned = {}
    for key, value in attrs.items():
        if value is None:
            continue
        if key in BOOL_ATTRS:
            value = bool(value)
        cleaned[key] = _freeze(value)
    frozen = tuple(sorted(cleaned.items()))
    key = (ctype, width, frozen)
    with _SPEC_INTERN_LOCK:
        spec = _SPEC_INTERN.get(key)
        if spec is not None:
            return spec
    spec = ComponentSpec(ctype, width, frozen)
    # Fail fast on unknown ctypes / malformed attrs by deriving ports.
    port_signature(spec)
    with _SPEC_INTERN_LOCK:
        return _SPEC_INTERN.setdefault(key, spec)


def _restore_spec(ctype: str, width: int,
                  attrs: Tuple[Tuple[str, Hashable], ...]) -> ComponentSpec:
    """Unpickle target: land on the canonical interned instance.

    The fields were normalized and validated when the spec was first
    built, so this skips :func:`make_spec`'s cleaning and port
    derivation."""
    key = (ctype, width, attrs)
    with _SPEC_INTERN_LOCK:
        spec = _SPEC_INTERN.get(key)
        if spec is not None:
            return spec
    spec = ComponentSpec(ctype, width, attrs)
    with _SPEC_INTERN_LOCK:
        return _SPEC_INTERN.setdefault(key, spec)


# ---------------------------------------------------------------------------
# Port signatures
# ---------------------------------------------------------------------------

def _in(name: str, width: int = 1, kind: PinKind = PinKind.DATA) -> Port:
    return Port(name, width, Direction.IN, kind)


def _out(name: str, width: int = 1) -> Port:
    return Port(name, width, Direction.OUT, PinKind.DATA)


def _gate_ports(spec: ComponentSpec) -> Tuple[Port, ...]:
    kind = spec.get("kind")
    if kind not in GATE_KINDS:
        raise ValueError(f"GATE requires kind in {GATE_KINDS}, got {kind!r}")
    n_inputs = spec.get("n_inputs", 1 if kind in ("NOT", "BUF") else 2)
    if kind in ("NOT", "BUF") and n_inputs != 1:
        raise ValueError(f"{kind} gate must have exactly 1 input")
    if kind not in ("NOT", "BUF") and n_inputs < 2:
        raise ValueError(f"{kind} gate needs >= 2 inputs")
    ports = [_in(f"I{i}", spec.width) for i in range(n_inputs)]
    ports.append(_out("O", spec.width))
    return tuple(ports)


def _mux_ports(spec: ComponentSpec) -> Tuple[Port, ...]:
    n_inputs = spec.get("n_inputs", 2)
    if n_inputs < 2:
        raise ValueError("MUX needs >= 2 inputs")
    ports = [_in(f"I{i}", spec.width) for i in range(n_inputs)]
    ports.append(_in("S", sel_width(n_inputs), PinKind.CONTROL))
    ports.append(_out("O", spec.width))
    return tuple(ports)


def _decoder_ports(spec: ComponentSpec) -> Tuple[Port, ...]:
    n_outputs = spec.get("n_outputs", 1 << spec.width)
    ports = [_in("I", spec.width)]
    if spec.get("enable", False):
        ports.append(_in("EN", 1, PinKind.ENABLE))
    ports.append(_out("O", n_outputs))
    return tuple(ports)


def _encoder_ports(spec: ComponentSpec) -> Tuple[Port, ...]:
    n_inputs = spec.get("n_inputs", 1 << spec.width)
    ports = [_in("I", n_inputs), _out("O", spec.width)]
    if spec.get("valid", False):
        ports.append(_out("V", 1))
    return tuple(ports)


def _adder_like_ports(spec: ComponentSpec, has_mode: bool) -> Tuple[Port, ...]:
    ports = [_in("A", spec.width), _in("B", spec.width)]
    if spec.get("carry_in", False):
        ports.append(_in("CI", 1))
    if has_mode:
        ports.append(_in("M", 1, PinKind.CONTROL))
    ports.append(_out("S", spec.width))
    if spec.get("carry_out", False):
        ports.append(_out("CO", 1))
    if spec.get("group_carry", False):
        # Generate/propagate outputs for carry-look-ahead structures.
        ports.append(_out("G", 1))
        ports.append(_out("P", 1))
    return tuple(ports)


def _unary_arith_ports(spec: ComponentSpec) -> Tuple[Port, ...]:
    ports = [_in("A", spec.width)]
    if spec.get("carry_in", False):
        ports.append(_in("CI", 1))
    ports.append(_out("S", spec.width))
    if spec.get("carry_out", False):
        ports.append(_out("CO", 1))
    return tuple(ports)


def _alu_ports(spec: ComponentSpec) -> Tuple[Port, ...]:
    ops = spec.ops
    if not ops:
        raise ValueError("ALU spec requires a non-empty 'ops' attribute")
    ports = [
        _in("A", spec.width),
        _in("B", spec.width),
        _in("S", sel_width(len(ops)), PinKind.CONTROL),
    ]
    if spec.get("carry_in", False):
        ports.append(_in("CI", 1))
    ports.append(_out("O", spec.width))
    if spec.get("carry_out", False):
        ports.append(_out("CO", 1))
    return tuple(ports)


def _comparator_ports(spec: ComponentSpec) -> Tuple[Port, ...]:
    ops = spec.ops or ("EQ", "LT", "GT")
    ports = [_in("A", spec.width), _in("B", spec.width)]
    if spec.get("cascaded", False):
        # Cascade inputs from the less-significant stage.
        for op in ops:
            ports.append(_in(f"{op}_IN", 1))
    for op in ops:
        ports.append(_out(op, 1))
    return tuple(ports)


def _shifter_ports(spec: ComponentSpec) -> Tuple[Port, ...]:
    ops = spec.ops or ("SHL", "SHR")
    ports = [_in("A", spec.width)]
    ports.append(_in("S", sel_width(len(ops)), PinKind.CONTROL))
    ports.append(_in("SI", 1))  # serial fill-in bit
    ports.append(_out("O", spec.width))
    return tuple(ports)


def _barrel_ports(spec: ComponentSpec) -> Tuple[Port, ...]:
    ops = spec.ops or ("SHL",)
    ports = [_in("A", spec.width), _in("SH", sel_width(spec.width))]
    if len(ops) > 1:
        ports.append(_in("S", sel_width(len(ops)), PinKind.CONTROL))
    ports.append(_out("O", spec.width))
    return tuple(ports)


def _mult_ports(spec: ComponentSpec) -> Tuple[Port, ...]:
    width_b = spec.get("width_b", spec.width)
    return (
        _in("A", spec.width),
        _in("B", width_b),
        _out("P", spec.width + width_b),
    )


def _div_ports(spec: ComponentSpec) -> Tuple[Port, ...]:
    return (
        _in("A", spec.width),
        _in("B", spec.width),
        _out("Q", spec.width),
        _out("R", spec.width),
    )


def _reg_ports(spec: ComponentSpec) -> Tuple[Port, ...]:
    ports = [_in("D", spec.width), _in("CLK", 1, PinKind.CLOCK)]
    if spec.get("enable", False):
        ports.append(_in("CEN", 1, PinKind.ENABLE))
    if spec.get("async_reset", False):
        ports.append(_in("ARST", 1, PinKind.ASYNC))
    ports.append(_out("Q", spec.width))
    if spec.get("complement_out", False):
        ports.append(_out("QN", spec.width))
    return tuple(ports)


def _shift_reg_ports(spec: ComponentSpec) -> Tuple[Port, ...]:
    ports = [
        _in("D", spec.width),
        _in("SI", 1),
        _in("CLK", 1, PinKind.CLOCK),
        _in("MODE", 2, PinKind.CONTROL),  # hold / load / shift-left / shift-right
        _out("Q", spec.width),
        _out("SO", 1),
    ]
    return tuple(ports)


def _counter_ports(spec: ComponentSpec) -> Tuple[Port, ...]:
    ops = spec.ops or COUNTER_OPS
    ports = []
    if "LOAD" in ops:
        ports.append(_in("I0", spec.width))
    ports.append(_in("CLK", 1, PinKind.CLOCK))
    if spec.get("enable", False):
        ports.append(_in("CEN", 1, PinKind.ENABLE))
    for op, pin in (("LOAD", "CLOAD"), ("COUNT_UP", "CUP"), ("COUNT_DOWN", "CDOWN")):
        if op in ops:
            ports.append(_in(pin, 1, PinKind.CONTROL))
    if spec.get("async_set", False):
        ports.append(_in("ASET", 1, PinKind.ASYNC))
    if spec.get("async_reset", False):
        ports.append(_in("ARESET", 1, PinKind.ASYNC))
    ports.append(_out("O0", spec.width))
    if spec.get("carry_out", False):
        ports.append(_out("CO", 1))
    return tuple(ports)


def _regfile_ports(spec: ComponentSpec) -> Tuple[Port, ...]:
    n_words = spec.get("n_words", 4)
    abits = sel_width(n_words)
    ports = [_in("CLK", 1, PinKind.CLOCK)]
    for i in range(spec.get("n_write", 1)):
        ports += [
            _in(f"WA{i}", abits),
            _in(f"WD{i}", spec.width),
            _in(f"WE{i}", 1, PinKind.ENABLE),
        ]
    for i in range(spec.get("n_read", 1)):
        ports += [_in(f"RA{i}", abits), _out(f"RD{i}", spec.width)]
    return tuple(ports)


def _memory_ports(spec: ComponentSpec) -> Tuple[Port, ...]:
    n_words = spec.get("n_words", 16)
    abits = sel_width(n_words)
    return (
        _in("CLK", 1, PinKind.CLOCK),
        _in("ADDR", abits),
        _in("DIN", spec.width),
        _in("WE", 1, PinKind.ENABLE),
        _out("DOUT", spec.width),
    )


def _stack_ports(spec: ComponentSpec) -> Tuple[Port, ...]:
    return (
        _in("CLK", 1, PinKind.CLOCK),
        _in("DIN", spec.width),
        _in("PUSH", 1, PinKind.CONTROL),
        _in("POP", 1, PinKind.CONTROL),
        _out("DOUT", spec.width),
        _out("EMPTY", 1),
        _out("FULL", 1),
    )


def _cla_gen_ports(spec: ComponentSpec) -> Tuple[Port, ...]:
    groups = spec.get("groups", 4)
    return (
        _in("G", groups),
        _in("P", groups),
        _in("CI", 1),
        _out("C", groups),  # C[i] = carry out of group i
        _out("GG", 1),
        _out("GP", 1),
    )


def _interface_ports(spec: ComponentSpec) -> Tuple[Port, ...]:
    if spec.ctype == "TRISTATE":
        return (_in("I", spec.width), _in("OE", 1, PinKind.ENABLE), _out("O", spec.width))
    if spec.ctype == "PORT":
        if spec.get("direction", "in") == "in":
            return (_out("O", spec.width),)
        return (_in("I", spec.width),)
    # BUFFER, CLOCK_DRIVER, SCHMITT: unit-gain single input/output.
    return (_in("I", spec.width), _out("O", spec.width))


def _misc_ports(spec: ComponentSpec) -> Tuple[Port, ...]:
    if spec.ctype == "CONCAT":
        widths = spec.get("part_widths", (spec.width,))
        ports = [_in(f"I{i}", w) for i, w in enumerate(widths)]
        ports.append(_out("O", sum(widths)))
        return tuple(ports)
    if spec.ctype == "EXTRACT":
        src_width = spec.get("src_width", spec.width)
        return (_in("I", src_width), _out("O", spec.width))
    if spec.ctype == "CONST":
        return (_out("O", spec.width),)
    if spec.ctype == "CLOCK_GEN":
        return (_out("CLK", 1),)
    if spec.ctype == "WIRED_OR":
        n_inputs = spec.get("n_inputs", 2)
        ports = [_in(f"I{i}", spec.width) for i in range(n_inputs)]
        ports.append(_out("O", spec.width))
        return tuple(ports)
    if spec.ctype == "BUS":
        n_drivers = spec.get("n_drivers", 2)
        ports = [_in(f"I{i}", spec.width) for i in range(n_drivers)]
        ports += [_in(f"OE{i}", 1, PinKind.ENABLE) for i in range(n_drivers)]
        ports.append(_out("O", spec.width))
        return tuple(ports)
    # DELAY
    return (_in("I", spec.width), _out("O", spec.width))


_SIGNATURES = {
    "GATE": _gate_ports,
    "MUX": _mux_ports,
    "SELECTOR": _mux_ports,
    "DECODER": _decoder_ports,
    "ENCODER": _encoder_ports,
    "ADD": lambda s: _adder_like_ports(s, has_mode=False),
    "SUB": lambda s: _adder_like_ports(s, has_mode=False),
    "ADDSUB": lambda s: _adder_like_ports(s, has_mode=True),
    "INC": _unary_arith_ports,
    "DEC": _unary_arith_ports,
    "ALU": _alu_ports,
    "COMPARATOR": _comparator_ports,
    "SHIFTER": _shifter_ports,
    "BARREL_SHIFTER": _barrel_ports,
    "MULT": _mult_ports,
    "DIV": _div_ports,
    "REG": _reg_ports,
    "SHIFT_REG": _shift_reg_ports,
    "COUNTER": _counter_ports,
    "REGFILE": _regfile_ports,
    "MEMORY": _memory_ports,
    "STACK": _stack_ports,
    "FIFO": _stack_ports,
    "CLA_GEN": _cla_gen_ports,
    "PORT": _interface_ports,
    "BUFFER": _interface_ports,
    "TRISTATE": _interface_ports,
    "CLOCK_DRIVER": _interface_ports,
    "SCHMITT": _interface_ports,
    "BUS": _misc_ports,
    "DELAY": _misc_ports,
    "CONCAT": _misc_ports,
    "EXTRACT": _misc_ports,
    "CLOCK_GEN": _misc_ports,
    "WIRED_OR": _misc_ports,
    "CONST": _misc_ports,
}

#: Every component type DTAS and GENUS know about.
KNOWN_CTYPES = tuple(sorted(_SIGNATURES))


# Weakly keyed so signatures live exactly as long as some equal spec
# object does: lookups hit across equal specs (hash/eq based), but a
# retired spec population (e.g. a finished retargeting sweep) releases
# its entries instead of pinning them for the process lifetime.
_SIGNATURE_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def port_signature(spec: ComponentSpec) -> Tuple[Port, ...]:
    """Derive the full, ordered port list of a component specification.

    Signatures are pure functions of the (frozen) spec and are derived
    for every spec construction and module instantiation, so results
    are cached.  The returned tuple is shared: treat it as read-only.
    """
    cached = _SIGNATURE_CACHE.get(spec)
    if cached is not None:
        return cached
    handler = _SIGNATURES.get(spec.ctype)
    if handler is None:
        raise ValueError(f"unknown component type {spec.ctype!r}")
    ports = handler(spec)
    _SIGNATURE_CACHE[spec] = ports
    return ports


def data_input_names(spec: ComponentSpec) -> Tuple[str, ...]:
    """Names of the spec's data-kind input ports."""
    return tuple(
        p.name for p in port_signature(spec) if p.is_input and p.kind is PinKind.DATA
    )


def output_names(spec: ComponentSpec) -> Tuple[str, ...]:
    """Names of the spec's output ports."""
    return tuple(p.name for p in port_signature(spec) if p.is_output)


# ---------------------------------------------------------------------------
# Convenience spec constructors used throughout the code base and tests
# ---------------------------------------------------------------------------

def adder_spec(width: int, carry_in: bool = True, carry_out: bool = True,
               group_carry: bool = False) -> ComponentSpec:
    """An n-bit binary adder."""
    return make_spec("ADD", width, carry_in=carry_in, carry_out=carry_out,
                     group_carry=group_carry or None)


def alu_spec(width: int, ops: Iterable[str] = ALU16_OPS,
             carry_in: bool = True, carry_out: bool = True) -> ComponentSpec:
    """An n-bit multifunction ALU (defaults to the paper's 16 functions)."""
    return make_spec("ALU", width, ops=tuple(ops), carry_in=carry_in,
                     carry_out=carry_out)


def mux_spec(n_inputs: int, width: int) -> ComponentSpec:
    """An n-to-1 multiplexer of the given data width."""
    return make_spec("MUX", width, n_inputs=n_inputs)


def register_spec(width: int, enable: bool = False, async_reset: bool = False) -> ComponentSpec:
    """An n-bit D register."""
    return make_spec("REG", width, enable=enable or None, async_reset=async_reset or None)


def counter_spec(width: int, ops: Iterable[str] = COUNTER_OPS,
                 style: str = "SYNCHRONOUS", enable: bool = True) -> ComponentSpec:
    """An n-bit up/down/load counter."""
    return make_spec("COUNTER", width, ops=tuple(ops), style=style,
                     enable=enable or None)


def comparator_spec(width: int, ops: Iterable[str] = ("EQ", "LT", "GT"),
                    cascaded: bool = False) -> ComponentSpec:
    """An n-bit magnitude comparator."""
    return make_spec("COMPARATOR", width, ops=tuple(ops), cascaded=cascaded or None)


def gate_spec(kind: str, n_inputs: int = 2, width: int = 1) -> ComponentSpec:
    """A (possibly bitwise) logic gate."""
    if kind in ("NOT", "BUF"):
        n_inputs = 1
    return make_spec("GATE", width, kind=kind, n_inputs=n_inputs)
