"""Library-specific design rules.

"DTAS requires nine library-specific design rules to fully utilize the
subset of cells from LSI Logic" (paper section 7).  This module
provides those nine rules for the reconstructed LSI library -- and,
because each is built by a parametric *factory*, the same knowledge can
be re-instantiated for a different data book.  That is precisely the
hook LOLA (:mod:`repro.lola`) uses to retarget DTAS automatically.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.rules import DecompBuilder, Rule, RuleContext, even_splits
from repro.core.rulebase.helpers import and2, is_pow2, or2
from repro.core.specs import ComponentSpec, comparator_spec, gate_spec, make_spec, mux_spec, sel_width
from repro.netlist.nets import Concat, Const


# ---------------------------------------------------------------------------
# Factories (shared with LOLA)
# ---------------------------------------------------------------------------

def ripple_chain_rule(name: str, block_width: int,
                      library_specific: bool = True) -> Rule:
    """ADD(w) -> ripple chain of ``block_width``-bit adder blocks (the
    final block covers any remainder)."""

    def build(spec: ComponentSpec, context: RuleContext):
        width = spec.width
        chunks = even_splits(width, block_width)
        b = DecompBuilder(spec, f"add{width}_ripple{block_width}")
        carry = b.port("CI").ref() if spec.get("carry_in", False) else Const(0, 1)
        for i, (lo, part) in enumerate(chunks):
            last = i == len(chunks) - 1
            sub = make_spec("ADD", part, carry_in=True,
                            carry_out=(not last) or spec.get("carry_out", False)
                            or None)
            pins = dict(A=b.port("A")[lo:lo + part], B=b.port("B")[lo:lo + part],
                        CI=carry, S=b.port("S")[lo:lo + part])
            if not last:
                nxt = b.net(f"c{i}", 1)
                pins["CO"] = nxt
                carry = nxt.ref()
            elif spec.get("carry_out", False):
                pins["CO"] = b.port("CO")
            b.inst(f"a{i}", sub, **pins)
        yield b.done()

    return Rule(name, "ADD", build,
                guard=lambda s: s.width > block_width
                and not s.get("group_carry", False),
                library_specific=library_specific,
                description=f"ripple chain of {block_width}-bit adder cells")


def addsub_chain_rule(name: str, block_width: int,
                      library_specific: bool = True) -> Rule:
    """ADDSUB(w) -> ripple chain of adder/subtractor blocks sharing M."""

    def build(spec: ComponentSpec, context: RuleContext):
        width = spec.width
        chunks = even_splits(width, block_width)
        b = DecompBuilder(spec, f"addsub{width}_chain{block_width}")
        if spec.get("carry_in", False):
            carry = b.port("CI").ref()
        else:
            carry = b.port("M").ref()  # two's-complement +1 for subtract
        for i, (lo, part) in enumerate(chunks):
            last = i == len(chunks) - 1
            sub = make_spec("ADDSUB", part, carry_in=True,
                            carry_out=(not last) or spec.get("carry_out", False)
                            or None)
            pins = dict(A=b.port("A")[lo:lo + part], B=b.port("B")[lo:lo + part],
                        M=b.port("M"), CI=carry, S=b.port("S")[lo:lo + part])
            if not last:
                nxt = b.net(f"c{i}", 1)
                pins["CO"] = nxt
                carry = nxt.ref()
            elif spec.get("carry_out", False):
                pins["CO"] = b.port("CO")
            b.inst(f"s{i}", sub, **pins)
        yield b.done()

    return Rule(name, "ADDSUB", build,
                guard=lambda s: s.width > block_width,
                library_specific=library_specific,
                description=f"chain of {block_width}-bit adder/subtractor cells")


def mux2_slice_rule(name: str, slice_width: int,
                    library_specific: bool = True) -> Rule:
    """MUX(2, w) -> ``slice_width``-bit quad/dual mux slices."""

    def build(spec: ComponentSpec, context: RuleContext):
        width = spec.width
        b = DecompBuilder(spec, f"mux2_{width}_slice{slice_width}")
        for i, (lo, part) in enumerate(even_splits(width, slice_width)):
            sub = mux_spec(2, part)
            b.inst(f"m{i}", sub,
                   I0=b.port("I0")[lo:lo + part], I1=b.port("I1")[lo:lo + part],
                   S=b.port("S"), O=b.port("O")[lo:lo + part])
        yield b.done()

    return Rule(name, "MUX", build,
                guard=lambda s: s.get("n_inputs", 2) == 2
                and s.width > slice_width,
                library_specific=library_specific,
                description=f"wide 2:1 mux -> {slice_width}-bit mux slices")


def mux_radix_tree_rule(name: str, radix: int,
                        library_specific: bool = True) -> Rule:
    """MUX(n) -> ``radix`` subtrees + one radix-wide root mux.  Needs
    power-of-two counts so the select bits split exactly."""

    def build(spec: ComponentSpec, context: RuleContext):
        n = spec.get("n_inputs", 2)
        width = spec.width
        group = n // radix
        bits = sel_width(n)
        low_bits = sel_width(group)
        b = DecompBuilder(spec, f"mux{n}_radix{radix}")
        legs = []
        sub = mux_spec(group, width)
        for g in range(radix):
            leg = b.net(f"leg{g}", width)
            pins = {f"I{i}": b.port(f"I{g * group + i}") for i in range(group)}
            pins["S"] = b.port("S")[0:low_bits]
            pins["O"] = leg
            b.inst(f"m{g}", sub, **pins)
            legs.append(leg)
        root = b.inst("root", mux_spec(radix, width),
                      S=b.port("S")[low_bits:bits], O=b.port("O"))
        for i, leg in enumerate(legs):
            root.connect(f"I{i}", leg.ref())
        yield b.done()

    def guard(spec: ComponentSpec) -> bool:
        n = spec.get("n_inputs", 2)
        return (is_pow2(n) and n > radix and n % radix == 0
                and is_pow2(radix) and n // radix >= 2)

    return Rule(name, "MUX", build, guard=guard,
                library_specific=library_specific,
                description=f"radix-{radix} mux tree")


def register_pack_rule(name: str, widths: Sequence[int],
                       library_specific: bool = True) -> Rule:
    """REG(w) -> greedy packing into the library's register widths."""
    sorted_widths = sorted(widths, reverse=True)

    def chunks_for(width: int) -> List[Tuple[int, int]]:
        result = []
        lo = 0
        while lo < width:
            for w in sorted_widths:
                if w <= width - lo:
                    result.append((lo, w))
                    lo += w
                    break
            else:
                result.append((lo, 1))
                lo += 1
        return result

    def build(spec: ComponentSpec, context: RuleContext):
        width = spec.width
        b = DecompBuilder(spec, f"reg{width}_pack")
        attrs = dict(enable=spec.get("enable", False) or None,
                     async_reset=spec.get("async_reset", False) or None)
        for i, (lo, part) in enumerate(chunks_for(width)):
            pins = dict(D=b.port("D")[lo:lo + part], CLK=b.port("CLK"),
                        Q=b.port("Q")[lo:lo + part])
            if spec.get("enable", False):
                pins["CEN"] = b.port("CEN")
            if spec.get("async_reset", False):
                pins["ARST"] = b.port("ARST")
            b.inst(f"r{i}", make_spec("REG", part, **attrs), **pins)
        yield b.done()

    return Rule(name, "REG", build,
                guard=lambda s: s.width > min(widths)
                and not s.get("complement_out", False),
                library_specific=library_specific,
                description=f"register packing into widths {list(widths)}")


def counter_chain_rule(name: str, block_width: int,
                       library_specific: bool = True) -> Rule:
    """COUNTER(w) -> cascade of ``block_width``-bit counter blocks with
    carry-out enabling each higher block (load passes unconditionally)."""

    def build(spec: ComponentSpec, context: RuleContext):
        from repro.core.rulebase.counters import counter_cascade_netlist

        yield counter_cascade_netlist(spec, block_width)

    def guard(spec: ComponentSpec) -> bool:
        return (spec.width % block_width == 0
                and spec.width // block_width >= 2
                and spec.get("style", "SYNCHRONOUS") in ("SYNCHRONOUS", None))

    return Rule(name, "COUNTER", build, guard=guard,
                library_specific=library_specific,
                description=f"cascade of {block_width}-bit counter cells")


def comparator_chain_rule(name: str, block_width: int,
                          library_specific: bool = True) -> Rule:
    """COMPARATOR(w) -> LSB-to-MSB chain of cascadable comparator
    blocks; the LSB block's cascade inputs are tied to identity."""

    def build(spec: ComponentSpec, context: RuleContext):
        width = spec.width
        chunks = even_splits(width, block_width)
        b = DecompBuilder(spec, f"cmp{width}_chain{block_width}")
        eq_in, lt_in, gt_in = Const(1, 1), Const(0, 1), Const(0, 1)
        for i, (lo, part) in enumerate(chunks):
            last = i == len(chunks) - 1
            sub = comparator_spec(part, ("EQ", "LT", "GT"), cascaded=True)
            pins = dict(A=b.port("A")[lo:lo + part], B=b.port("B")[lo:lo + part],
                        EQ_IN=eq_in, LT_IN=lt_in, GT_IN=gt_in)
            if last:
                for op in ("EQ", "LT", "GT"):
                    if b.has_port(op):
                        pins[op] = b.port(op)
            else:
                eq = b.net(f"eq{i}", 1)
                lt = b.net(f"lt{i}", 1)
                gt = b.net(f"gt{i}", 1)
                pins.update(EQ=eq, LT=lt, GT=gt)
                eq_in, lt_in, gt_in = eq.ref(), lt.ref(), gt.ref()
            b.inst(f"c{i}", sub, **pins)
        yield b.done()

    def guard(spec: ComponentSpec) -> bool:
        return (spec.width > block_width
                and set(spec.ops or ("EQ", "LT", "GT")) <= {"EQ", "LT", "GT"}
                and not spec.get("cascaded", False))

    return Rule(name, "COMPARATOR", build, guard=guard,
                library_specific=library_specific,
                description=f"chain of {block_width}-bit comparator cells")


# ---------------------------------------------------------------------------
# The nine LSI Logic rules
# ---------------------------------------------------------------------------

_LSI_RULES: List[Rule] = []


def lsi_rules() -> List[Rule]:
    """The nine library-specific rules for the LSI 1.5-micron subset,
    mirroring the paper's count.

    The Rule objects are built once per process: they are immutable,
    and reusing them keeps their builder closures stable so the
    design-space decomposition cache stays warm across DTAS instances.
    """
    if not _LSI_RULES:
        _LSI_RULES.extend([
            ripple_chain_rule("lsi-add-ripple4", 4),
            ripple_chain_rule("lsi-add-ripple2", 2),
            ripple_chain_rule("lsi-add-ripple1", 1),
            addsub_chain_rule("lsi-addsub-chain2", 2),
            mux2_slice_rule("lsi-mux2-quad", 4),
            mux_radix_tree_rule("lsi-mux-radix4", 4),
            mux_radix_tree_rule("lsi-mux-radix8", 8),
            register_pack_rule("lsi-reg-pack", (8, 4, 1)),
            comparator_chain_rule("lsi-cmp-chain4", 4),
        ])
    return list(_LSI_RULES)
