"""The DTAS synthesis driver.

Ties the pieces together exactly as the paper's section 5 describes:
the input (a single component specification, a GENUS netlist, or GENUS
instances) is passed through functional decomposition and technology
mapping; the output is "a set of hierarchical, library-specific
netlists that represent alternative implementations of the components
in the input netlist".
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.core.configs import Configuration
from repro.core.design_space import DesignSpace, DesignTree, SynthesisError
from repro.core.filters import PerformanceFilter
from repro.core.rules import Rule, RuleBase
from repro.core.specs import ComponentSpec
from repro.netlist.netlist import Netlist

if False:  # typing only; avoids a circular import with repro.techlib
    from repro.techlib.cells import CellLibrary


@dataclass
class DesignAlternative:
    """One surviving point of the design space, with its cost and the
    means to materialize its full hierarchical netlist."""

    index: int
    config: Configuration
    _space: DesignSpace = field(repr=False, default=None)
    _spec: Optional[ComponentSpec] = field(repr=False, default=None)

    @property
    def area(self) -> float:
        return self.config.area

    @property
    def delay(self) -> float:
        return self.config.delay

    def tree(self) -> DesignTree:
        """The hierarchical design this alternative denotes."""
        if self._spec is None:
            raise SynthesisError("netlist-level alternatives have no single root")
        return self._space.materialize(self._spec, self.config)

    def cell_counts(self) -> Dict[str, int]:
        return self.tree().cell_counts()

    def describe(self) -> str:
        return f"#{self.index}: area {self.area:7.0f} gates, delay {self.delay:6.1f} ns"


@dataclass
class SynthesisResult:
    """Alternatives (sorted by area), plus design-space statistics."""

    alternatives: List[DesignAlternative]
    stats: Dict[str, int]
    runtime_seconds: float
    spec: Optional[ComponentSpec] = None
    #: Wall-clock seconds per engine phase for *this* request (expand,
    #: node_probe, enumerate_cost, filter, node_publish) -- a snapshot
    #: delta of :attr:`DesignSpace.phase_seconds`, kept separate from
    #: ``stats`` (which must stay deterministic run to run).  Empty for
    #: results deserialized from old store payloads.
    phases: Dict[str, float] = field(default_factory=dict)

    def smallest(self) -> DesignAlternative:
        return min(self.alternatives, key=lambda a: (a.area, a.delay))

    def fastest(self) -> DesignAlternative:
        return min(self.alternatives, key=lambda a: (a.delay, a.area))

    def __len__(self) -> int:
        return len(self.alternatives)

    def table(self) -> str:
        """Figure-3 style table: each design with its area/delay and the
        percentage change relative to the smallest design."""
        base = self.smallest()
        lines = [
            f"{'design':>8} {'area':>8} {'delay':>8} {'d-area':>8} {'d-delay':>8}"
        ]
        for alt in self.alternatives:
            d_area = 100.0 * (alt.area - base.area) / base.area if base.area else 0.0
            d_delay = (100.0 * (alt.delay - base.delay) / base.delay
                       if base.delay else 0.0)
            lines.append(
                f"{alt.index:>8} {alt.area:>8.0f} {alt.delay:>8.1f} "
                f"{d_area:>+7.0f}% {d_delay:>+7.0f}%"
            )
        return "\n".join(lines)


class DTAS:
    """Deprecated facade over :class:`repro.api.session.Session`.

    The synthesis flow is now driven through ``repro.api`` (typed
    requests, registries, batch runs, the CLI); this class remains so
    existing callers keep working, delegating every operation to a
    private session.  Construction accepts exactly the old arguments --
    ``rulebase=None`` still means the standard rulebase plus the nine
    LSI-specific rules when the library is the LSI subset (the
    registry's ``auto`` policy), and ``perf_filter=None`` still means
    the Pareto filter.

    New code should write::

        from repro.api import Session

        session = Session(library, perf_filter=...)
        job = session.synthesize(spec)          # job.result == old return
    """

    def __init__(
        self,
        library: CellLibrary,
        rulebase: Optional[RuleBase] = None,
        extra_rules: Sequence[Rule] = (),
        perf_filter: Optional[PerformanceFilter] = None,
        validate: bool = True,
        prune_partial: bool = False,
    ) -> None:
        warnings.warn(
            "repro.core.DTAS is deprecated; use repro.api.Session",
            DeprecationWarning, stacklevel=2,
        )
        from repro.api.session import Session

        self._session = Session(
            library,
            rulebase=rulebase,
            perf_filter=perf_filter,
            extra_rules=extra_rules,
            validate=validate,
            prune_partial=prune_partial,
        )
        self.library = self._session.library
        self.rulebase = self._session.rulebase
        self.perf_filter = self._session.perf_filter
        self.space = self._session.space

    # ------------------------------------------------------------------
    def synthesize_spec(self, spec: ComponentSpec) -> SynthesisResult:
        """Alternatives for one component specification."""
        return self._session.synthesize(spec).result

    def synthesize_netlist(self, netlist: Netlist) -> SynthesisResult:
        """Alternatives for a whole GENUS netlist."""
        return self._session.synthesize(netlist).result

    def materialize(self, spec: ComponentSpec, alt: DesignAlternative) -> DesignTree:
        return self.space.materialize(spec, alt.config)


def synthesize(
    target: Union[ComponentSpec, Netlist],
    library: CellLibrary,
    perf_filter: Optional[PerformanceFilter] = None,
    rulebase: Optional[RuleBase] = None,
) -> SynthesisResult:
    """Deprecated one-call wrapper; use
    :meth:`repro.api.Session.synthesize` instead."""
    warnings.warn(
        "repro.core.synthesize is deprecated; use repro.api.Session",
        DeprecationWarning, stacklevel=2,
    )
    from repro.api.session import Session

    session = Session(library, rulebase=rulebase, perf_filter=perf_filter)
    return session.synthesize(target).result
