"""The DTAS synthesis driver.

Ties the pieces together exactly as the paper's section 5 describes:
the input (a single component specification, a GENUS netlist, or GENUS
instances) is passed through functional decomposition and technology
mapping; the output is "a set of hierarchical, library-specific
netlists that represent alternative implementations of the components
in the input netlist".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.core.configs import Configuration
from repro.core.design_space import DesignSpace, DesignTree, SynthesisError
from repro.core.filters import ParetoFilter, PerformanceFilter
from repro.core.rules import Rule, RuleBase
from repro.core.specs import ComponentSpec
from repro.netlist.netlist import Netlist

if False:  # typing only; avoids a circular import with repro.techlib
    from repro.techlib.cells import CellLibrary


@dataclass
class DesignAlternative:
    """One surviving point of the design space, with its cost and the
    means to materialize its full hierarchical netlist."""

    index: int
    config: Configuration
    _space: DesignSpace = field(repr=False, default=None)
    _spec: Optional[ComponentSpec] = field(repr=False, default=None)

    @property
    def area(self) -> float:
        return self.config.area

    @property
    def delay(self) -> float:
        return self.config.delay

    def tree(self) -> DesignTree:
        """The hierarchical design this alternative denotes."""
        if self._spec is None:
            raise SynthesisError("netlist-level alternatives have no single root")
        return self._space.materialize(self._spec, self.config)

    def cell_counts(self) -> Dict[str, int]:
        return self.tree().cell_counts()

    def describe(self) -> str:
        return f"#{self.index}: area {self.area:7.0f} gates, delay {self.delay:6.1f} ns"


@dataclass
class SynthesisResult:
    """Alternatives (sorted by area), plus design-space statistics."""

    alternatives: List[DesignAlternative]
    stats: Dict[str, int]
    runtime_seconds: float
    spec: Optional[ComponentSpec] = None

    def smallest(self) -> DesignAlternative:
        return min(self.alternatives, key=lambda a: (a.area, a.delay))

    def fastest(self) -> DesignAlternative:
        return min(self.alternatives, key=lambda a: (a.delay, a.area))

    def __len__(self) -> int:
        return len(self.alternatives)

    def table(self) -> str:
        """Figure-3 style table: each design with its area/delay and the
        percentage change relative to the smallest design."""
        base = self.smallest()
        lines = [
            f"{'design':>8} {'area':>8} {'delay':>8} {'d-area':>8} {'d-delay':>8}"
        ]
        for alt in self.alternatives:
            d_area = 100.0 * (alt.area - base.area) / base.area if base.area else 0.0
            d_delay = (100.0 * (alt.delay - base.delay) / base.delay
                       if base.delay else 0.0)
            lines.append(
                f"{alt.index:>8} {alt.area:>8.0f} {alt.delay:>8.1f} "
                f"{d_area:>+7.0f}% {d_delay:>+7.0f}%"
            )
        return "\n".join(lines)


class DTAS:
    """Functional synthesis of generic RTL components into a cell
    library (the paper's system, end to end).

    Parameters
    ----------
    library:
        The target RTL cell library.
    rulebase:
        Decomposition rules.  Defaults to the standard generic rulebase
        plus the nine LSI-specific rules when the library is the LSI
        subset.
    perf_filter:
        Search-control filter (S2); defaults to the Pareto filter.
    prune_partial:
        Opt-in: before the S1 cross product, drop sibling options that
        agree with a cheaper option on every *shared* spec choice and
        are dominated in area and every delay arc (see
        :func:`repro.core.configs.prune_dominated_options`).  A no-op
        under frontier filters (Pareto/tradeoff/top-k inputs are
        already mutually non-dominated); it pays off with weak filters
        such as :class:`KeepAllFilter`, where it cuts the evaluated
        space by integer factors.
    """

    def __init__(
        self,
        library: CellLibrary,
        rulebase: Optional[RuleBase] = None,
        extra_rules: Sequence[Rule] = (),
        perf_filter: Optional[PerformanceFilter] = None,
        validate: bool = True,
        prune_partial: bool = False,
    ) -> None:
        if rulebase is None:
            from repro.core.rulebase import standard_rulebase

            rulebase = standard_rulebase()
            if library.name.startswith("LSI"):
                from repro.core.library_rules import lsi_rules

                rulebase.extend(lsi_rules())
        for rule in extra_rules:
            rulebase.add(rule)
        self.library = library
        self.rulebase = rulebase
        self.perf_filter = perf_filter or ParetoFilter()
        self.space = DesignSpace(rulebase, library, self.perf_filter,
                                 validate=validate,
                                 prune_partial=prune_partial)

    # ------------------------------------------------------------------
    def synthesize_spec(self, spec: ComponentSpec) -> SynthesisResult:
        """Alternatives for one component specification."""
        start = time.perf_counter()
        configs = self.space.alternatives(spec)
        elapsed = time.perf_counter() - start
        alternatives = [
            DesignAlternative(i, config, self.space, spec)
            for i, config in enumerate(configs)
        ]
        return SynthesisResult(alternatives, self.space.stats(), elapsed, spec)

    def synthesize_netlist(self, netlist: Netlist) -> SynthesisResult:
        """Alternatives for a whole GENUS netlist."""
        start = time.perf_counter()
        configs = self.space.evaluate_netlist(netlist)
        elapsed = time.perf_counter() - start
        alternatives = [
            DesignAlternative(i, config, self.space, None)
            for i, config in enumerate(configs)
        ]
        return SynthesisResult(alternatives, self.space.stats(), elapsed)

    def materialize(self, spec: ComponentSpec, alt: DesignAlternative) -> DesignTree:
        return self.space.materialize(spec, alt.config)


def synthesize(
    target: Union[ComponentSpec, Netlist],
    library: CellLibrary,
    perf_filter: Optional[PerformanceFilter] = None,
    rulebase: Optional[RuleBase] = None,
) -> SynthesisResult:
    """One-call convenience wrapper around :class:`DTAS`."""
    dtas = DTAS(library, rulebase=rulebase, perf_filter=perf_filter)
    if isinstance(target, Netlist):
        return dtas.synthesize_netlist(target)
    return dtas.synthesize_spec(target)
