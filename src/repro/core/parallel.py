"""Work-sharing parallel evaluation of design-space subtrees.

``DesignSpace.configs`` is a memoized bottom-up walk; the units of
work are *specs*, and two specs with no shared descendants can be
evaluated in any order -- or at the same time.  This module
topologically partitions the expanded spec graph under a root into
independent subtree tasks and evaluates them concurrently, prefilling
the design space's ``_configs`` memo so the final sequential pass only
has the top-level residue left to do.

Two backends:

``"thread"`` (default)
    A work-sharing :class:`~concurrent.futures.ThreadPoolExecutor`
    evaluating subtrees directly against the shared design space.  The
    re-entrancy guards are thread-local and the memo writes are
    idempotent (every worker computes the same value for a shared
    spec), so no locking is needed.  Under the GIL this mostly overlaps
    allocation stalls; it is the safe, portable default.

``"process"`` (opt-in)
    A fork-based :mod:`multiprocessing` pool.  Workers are forked
    *after* expansion, so they inherit the expanded nodes, rule caches,
    and compiled timing programs for free; each worker evaluates its
    subtree and ships back the newly computed configurations, which are
    picklable by design (:class:`~repro.core.configs.Configuration`
    re-interns on load, so results land as canonical parent-process
    instances).  This is the backend that buys real wall-clock
    parallelism for the pure-Python inner loop.  Where ``fork`` is not
    available (e.g. Windows), it silently degrades to the thread
    backend.

Scheduling is largest-subtree-first: tasks are ordered by descendant
count and handed to whichever worker is free (work sharing), which
approximates longest-processing-time scheduling without needing a cost
model.  Subtrees may overlap in their deep, cheap leaves (gates are
shared by everything); overlapping work is recomputed rather than
coordinated, and the first result wins -- results are deterministic,
so every copy is bit-identical and installation order cannot change
the outcome.

Parity caveat: for *cyclic* decomposition graphs the sequential
engine's own results depend on evaluation order (the cycle guard drops
the implementation that closes the cycle as seen from the evaluation
stack); the parallel engine is guaranteed bit-identical for acyclic
graphs, which every shipped rulebase produces.
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Dict, Iterable, List, Sequence, Set, Tuple

from repro.core.specs import ComponentSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.configs import Configuration
    from repro.core.design_space import DesignSpace


# ---------------------------------------------------------------------------
# Topological partitioning
# ---------------------------------------------------------------------------

def child_specs(space: "DesignSpace", spec: ComponentSpec) -> List[ComponentSpec]:
    """Distinct module specs across the decomposition implementations
    of ``spec``, in first-seen order."""
    node = space.nodes.get(spec)
    if node is None:
        node = space.expand(spec)
    seen: Dict[ComponentSpec, None] = {}
    for impl in node.impls:
        if impl.kind != "decomp":
            continue
        for module in impl.netlist.modules:
            seen.setdefault(module.spec, None)
    return list(seen)


def descendant_counts(
    space: "DesignSpace", roots: Sequence[ComponentSpec]
) -> Dict[ComponentSpec, int]:
    """Number of distinct specs in each subtree (the task weight used
    for largest-first scheduling), computed over the expanded DAG."""
    sets: Dict[ComponentSpec, Set[ComponentSpec]] = {}

    def closure(spec: ComponentSpec, stack: Set[ComponentSpec]) -> Set[ComponentSpec]:
        cached = sets.get(spec)
        if cached is not None:
            return cached
        if spec in stack:
            return set()  # cycle: counted by the enclosing call
        stack.add(spec)
        acc: Set[ComponentSpec] = {spec}
        for child in child_specs(space, spec):
            acc |= closure(child, stack)
        stack.discard(spec)
        sets[spec] = acc
        return acc

    for root in roots:
        closure(root, set())
    return {spec: len(members) for spec, members in sets.items()}


def partition_subtrees(
    space: "DesignSpace",
    roots: Sequence[ComponentSpec],
    min_tasks: int,
) -> List[ComponentSpec]:
    """Independent subtree tasks under ``roots``, heaviest first.

    The first partition level is the distinct module specs of the
    roots' decompositions; when that yields too few tasks to keep
    ``min_tasks`` workers busy, one more level is pulled in (keeping
    the originals -- a worker that lands a parent subtree simply
    covers its children's results first).  Specs already memoized in
    the design space are skipped.
    """
    frontier: Dict[ComponentSpec, None] = {}
    for root in roots:
        space.expand(root)
        for child in child_specs(space, root):
            frontier.setdefault(child, None)
    if len(frontier) < min_tasks:
        for spec in list(frontier):
            for child in child_specs(space, spec):
                frontier.setdefault(child, None)
    tasks = [spec for spec in frontier if spec not in space._configs]
    if not tasks:
        return []
    weights = descendant_counts(space, tasks)
    order = {spec: position for position, spec in enumerate(tasks)}
    tasks.sort(key=lambda spec: (-weights.get(spec, 1), order[spec]))
    return tasks


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------

def _thread_prefill(space: "DesignSpace", tasks: Sequence[ComponentSpec],
                    jobs: int) -> None:
    with ThreadPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
        # list() propagates the first worker exception, if any.
        list(pool.map(space.configs, tasks))


# Fork inheritance channel for the process backend: set immediately
# before the pool is created, cleared after, under _FORK_LOCK so
# concurrent sessions cannot fork each other's space (or None).
# Workers read these module globals as copied at fork time;
# _FORK_SENT_DEPS/_FORK_SENT_NODE_STATS are *mutated in the worker* so
# each task ships only dependency edges / counter increments the
# parent has not seen from this worker yet.
_FORK_SPACE: "DesignSpace" = None
_FORK_SENT_DEPS: Dict[ComponentSpec, Set[ComponentSpec]] = {}
_FORK_SENT_NODE_STATS: Dict[str, int] = {}
_FORK_SENT_PHASES: Dict[str, float] = {}
_FORK_LOCK = threading.Lock()

#: What a process worker ships back: the configurations it computed,
#: the reverse-dependency edges it recorded while computing them (the
#: parent needs those for :meth:`DesignSpace.recost` to keep working
#: after a process-parallel run), and its node-cache counter
#: increments (the worker probes and publishes the shared
#: :class:`repro.nodestore.NodeStore` through its own post-fork
#: connection, and without the delta that traffic would be invisible
#: to the parent's stats).  All parts are deltas: a long-lived worker
#: must not re-pickle everything it has computed since fork on every
#: task.
_WorkerDelta = Tuple[
    Dict[ComponentSpec, List["Configuration"]],
    Dict[ComponentSpec, Set[ComponentSpec]],
    Dict[str, int],
    Dict[str, float],
]


def _fork_worker(spec: ComponentSpec) -> _WorkerDelta:
    space = _FORK_SPACE
    # Snapshot-diff: ship only what *this task* memoized.  Anything an
    # earlier task of this worker computed is already in the memo (and
    # was shipped then); the parent's pre-fork memo was inherited.
    known = frozenset(space._configs)
    space.configs(spec)
    configs = {
        sub: options
        for sub, options in space._configs.items()
        if options and sub not in known
    }
    dependents: Dict[ComponentSpec, Set[ComponentSpec]] = {}
    for sub, deps in space._dependents.items():
        sent = _FORK_SENT_DEPS.get(sub)
        fresh = deps - sent if sent is not None else set(deps)
        if fresh:
            dependents[sub] = fresh
            _FORK_SENT_DEPS[sub] = fresh if sent is None else sent | fresh
    node_stats: Dict[str, int] = {}
    for key, value in space.node_stats.items():
        sent_value = _FORK_SENT_NODE_STATS.get(key, 0)
        if value != sent_value:
            node_stats[key] = value - sent_value
            _FORK_SENT_NODE_STATS[key] = value
    # Phase clocks accumulate in the child exactly like node-cache
    # counters; ship the per-task increment so the parent's per-request
    # phase breakdown covers work done inside forked workers.
    phases: Dict[str, float] = {}
    for key, value in space.snapshot_phases().items():
        sent_seconds = _FORK_SENT_PHASES.get(key, 0.0)
        if value != sent_seconds:
            phases[key] = value - sent_seconds
            _FORK_SENT_PHASES[key] = value
    return configs, dependents, node_stats, phases


def _process_prefill(space: "DesignSpace", tasks: Sequence[ComponentSpec],
                     jobs: int) -> None:
    global _FORK_SPACE, _FORK_SENT_DEPS, _FORK_SENT_NODE_STATS, \
        _FORK_SENT_PHASES
    context = multiprocessing.get_context("fork")
    with _FORK_LOCK:
        _FORK_SPACE = space
        # Seed with the parent's pre-fork edges/counters so workers do
        # not ship back what the parent already knows.
        _FORK_SENT_DEPS = {sub: set(deps)
                           for sub, deps in space._dependents.items()}
        _FORK_SENT_NODE_STATS = dict(space.node_stats)
        _FORK_SENT_PHASES = space.snapshot_phases()
        try:
            with context.Pool(processes=min(jobs, len(tasks))) as pool:
                for configs, dependents, node_stats, phases in \
                        pool.imap_unordered(
                            _fork_worker, tasks, chunksize=1):
                    for spec, options in configs.items():
                        # First result wins; every copy is bit-identical,
                        # so arrival order cannot change the outcome.
                        # Empty results are not installed -- the
                        # sequential pass recomputes them so failure
                        # diagnostics populate.
                        if spec not in space._configs:
                            space._configs[spec] = options
                    # Dependency edges are facts about the expanded
                    # graph: union them so recost invalidation sees the
                    # edges recorded inside the forked children.
                    for spec, deps in dependents.items():
                        space._dependents.setdefault(spec, set()).update(deps)
                    # Node-cache traffic happened in the child (over its
                    # own connection to the shared store file); fold the
                    # increments in so the parent's stats tell the truth.
                    for key, delta in node_stats.items():
                        space.node_stats[key] = \
                            space.node_stats.get(key, 0) + delta
                    for key, seconds in phases.items():
                        space._phase_add(key, seconds)
        finally:
            _FORK_SPACE = None
            _FORK_SENT_DEPS = {}
            _FORK_SENT_NODE_STATS = {}
            _FORK_SENT_PHASES = {}


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def parallel_prefill(space: "DesignSpace",
                     roots: Iterable[ComponentSpec]) -> Dict[str, int]:
    """Evaluate the subtrees under ``roots`` with ``space.jobs``
    workers, prefilling the configuration memo.

    Called by :meth:`DesignSpace.alternatives` and
    :meth:`DesignSpace.evaluate_netlist` when ``jobs > 1``; safe to
    call directly.  Returns scheduling counters (also stored on
    ``space.last_parallel_stats`` for observability).
    """
    roots = list(roots)
    jobs = space.jobs
    tasks = partition_subtrees(space, roots, min_tasks=2 * jobs)
    stats = {"jobs": jobs, "tasks": len(tasks), "backend": "none"}
    if tasks and jobs > 1:
        backend = space.parallel_backend
        if backend == "process" and "fork" not in \
                multiprocessing.get_all_start_methods():
            backend = "thread"  # no fork on this platform: degrade safely
        if backend == "process":
            _process_prefill(space, tasks, jobs)
        else:
            _thread_prefill(space, tasks, jobs)
        stats["backend"] = backend
    space.last_parallel_stats = stats
    return stats
