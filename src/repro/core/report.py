"""Report formatting for DTAS results (Figure-3 style tables)."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.synthesizer import DesignAlternative, SynthesisResult


def figure3_points(result: SynthesisResult) -> List[Tuple[float, float, float, float]]:
    """(area, delay, d_area_pct, d_delay_pct) per alternative, relative
    to the smallest design -- the quantities Figure 3 annotates."""
    base = result.smallest()
    points = []
    for alt in result.alternatives:
        d_area = 100.0 * (alt.area - base.area) / base.area if base.area else 0.0
        d_delay = (100.0 * (alt.delay - base.delay) / base.delay
                   if base.delay else 0.0)
        points.append((alt.area, alt.delay, d_area, d_delay))
    return points


def figure3_report(result: SynthesisResult, title: str) -> str:
    """Render a Figure-3-like report block."""
    lines = [title, "=" * len(title), ""]
    lines.append(f"{'area (gates)':>14} {'delay (ns)':>12} {'d-area':>8} {'d-delay':>9}")
    for area, delay, d_area, d_delay in figure3_points(result):
        lines.append(
            f"{area:>14.0f} {delay:>12.1f} {d_area:>+7.0f}% {d_delay:>+8.0f}%"
        )
    lines.append("")
    lines.append(f"alternatives: {len(result)}   "
                 f"generated in {result.runtime_seconds:.2f} s")
    stats = result.stats
    lines.append(
        f"design space: {stats['spec_nodes']} specs, "
        f"{stats['implementations']} implementations "
        f"({stats['cell_bindings']} cell bindings, "
        f"{stats['decompositions']} decompositions)"
    )
    return "\n".join(lines)


def cell_usage_report(alt: DesignAlternative, max_rows: int = 20) -> str:
    """Leaf-cell usage of one materialized alternative."""
    counts = alt.cell_counts()
    rows = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:max_rows]
    lines = [f"{'cell':<10} {'count':>6}"]
    for name, count in rows:
        lines.append(f"{name:<10} {count:>6}")
    return "\n".join(lines)
