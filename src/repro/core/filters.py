"""Performance filters -- DTAS search control, principle S2.

From the paper (section 5): "we apply performance filters to eliminate
all but the 'best' alternative implementations of each component
specification in the design hierarchy", and (section 6) "the
performance filter used in this example accepts all design alternatives
that make favorable tradeoffs between area (in equivalent NAND gates)
and delay (in nanoseconds)".

A filter maps a list of :class:`~repro.core.configs.Configuration` to
the retained subset.  Filters are applied at *every specification node*
of the design space, which is what keeps the cross-product of module
alternatives from exploding (the paper's 16-bit adder drops from
hundreds of thousands of designs to ten).
"""

from __future__ import annotations

from typing import Iterable, List, Protocol, Sequence

from repro.core.configs import Configuration

try:  # optional: the block paths fall back to the scalar sort without it
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI images
    _np = None


class PerformanceFilter(Protocol):
    """Protocol for search-control filters over configurations.

    Filters may additionally offer ``select_block`` (same contract as
    ``select``); the batched evaluator prefers it when present and
    falls back to ``select`` otherwise, so third-party filters keep
    working unchanged."""

    def select(self, configs: Sequence[Configuration]) -> List[Configuration]:
        """Return the retained configurations, sorted by (area, delay)."""
        ...


def _sorted(configs: Iterable[Configuration]) -> List[Configuration]:
    return sorted(configs, key=lambda c: (c.area, c.delay))


def _sorted_block(configs: Sequence[Configuration]) -> List[Configuration]:
    """(area, delay)-sorted copy via one pass over the block's cost
    columns: ``np.lexsort`` over the gathered (area, delay) arrays is
    stable with the secondary key applied first, so the permutation is
    bit-identical to ``sorted(key=(area, delay))`` -- ties in both
    coordinates keep the original order in both implementations."""
    if _np is None or len(configs) < 32:
        return _sorted(configs)
    areas = _np.array([c.area for c in configs])
    delays = _np.array([c.delay for c in configs])
    order = _np.lexsort((delays, areas))
    return [configs[i] for i in order.tolist()]


def pareto_frontier(sorted_configs: Sequence[Configuration]) -> List[Configuration]:
    """Frontier of an already (area, delay)-sorted configuration list.

    Shared by every frontier-based filter so the sort happens exactly
    once per ``select`` call.  The result is itself sorted by
    (area, delay): area strictly increases and delay strictly decreases
    along the frontier.
    """
    frontier: List[Configuration] = []
    best_delay = float("inf")
    for config in sorted_configs:
        if config.delay < best_delay - 1e-12:
            frontier.append(config)
            best_delay = config.delay
    return frontier


class KeepAllFilter:
    """No pruning (used by the ablation benchmarks; expect blow-up)."""

    name = "keep-all"

    def select(self, configs: Sequence[Configuration]) -> List[Configuration]:
        return _sorted(configs)

    def select_block(
        self, configs: Sequence[Configuration]
    ) -> List[Configuration]:
        return _sorted_block(configs)


class ParetoFilter:
    """Keep the area/delay Pareto frontier.

    A configuration survives unless some other configuration is at
    least as good in both area and delay and strictly better in one.
    Ties on both axes keep the first representative only (they are
    interchangeable for downstream composition).
    """

    name = "pareto"

    def select(self, configs: Sequence[Configuration]) -> List[Configuration]:
        return pareto_frontier(_sorted(configs))

    def select_block(
        self, configs: Sequence[Configuration]
    ) -> List[Configuration]:
        return pareto_frontier(_sorted_block(configs))


class TradeoffFilter:
    """Pareto frontier thinned to *favorable* tradeoffs.

    Walking the frontier from the smallest design upward in area, a
    configuration is kept only when it reduces delay by at least
    ``min_delay_gain`` (fractional) relative to the last kept one.  The
    smallest and the fastest designs are always kept.  This mirrors the
    paper's Figure-3 filter, which retains five designs spanning
    +34 % area / -81 % delay.
    """

    name = "tradeoff"

    def __init__(self, min_delay_gain: float = 0.05) -> None:
        if not 0.0 <= min_delay_gain < 1.0:
            raise ValueError("min_delay_gain must be in [0, 1)")
        self.min_delay_gain = min_delay_gain

    def select(self, configs: Sequence[Configuration]) -> List[Configuration]:
        return self._thin(pareto_frontier(_sorted(configs)))

    def select_block(
        self, configs: Sequence[Configuration]
    ) -> List[Configuration]:
        return self._thin(pareto_frontier(_sorted_block(configs)))

    def _thin(self, frontier: List[Configuration]) -> List[Configuration]:
        if len(frontier) <= 2:
            return frontier
        kept = [frontier[0]]
        fastest = min(frontier, key=lambda c: c.delay)
        for config in frontier[1:]:
            last = kept[-1]
            if last.delay <= 0:
                break
            gain = (last.delay - config.delay) / last.delay
            if gain >= self.min_delay_gain or config is fastest:
                kept.append(config)
        if fastest not in kept:
            kept.append(fastest)
        # ``kept`` is a subsequence of the frontier (plus possibly the
        # fastest, i.e. largest-area, point appended last), so it is
        # already in (area, delay) order -- no re-sort needed.
        return kept


class TopKFilter:
    """Keep at most ``k`` Pareto configurations, preferring the extremes
    and then the largest delay gaps (a budgeted variant used in the
    ablation experiments)."""

    name = "top-k"

    def __init__(self, k: int = 8) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k

    def select(self, configs: Sequence[Configuration]) -> List[Configuration]:
        return self._top(pareto_frontier(_sorted(configs)))

    def select_block(
        self, configs: Sequence[Configuration]
    ) -> List[Configuration]:
        return self._top(pareto_frontier(_sorted_block(configs)))

    def _top(self, frontier: List[Configuration]) -> List[Configuration]:
        if len(frontier) <= self.k:
            return frontier
        kept = {0, len(frontier) - 1}
        # Greedily add the points with the largest delay drop from their
        # cheaper neighbor, preserving the spread of the frontier.
        gaps = sorted(
            range(1, len(frontier) - 1),
            key=lambda i: frontier[i - 1].delay - frontier[i].delay,
            reverse=True,
        )
        for index in gaps:
            if len(kept) >= self.k:
                break
            kept.add(index)
        return [frontier[i] for i in sorted(kept)]
