"""Technology mapping by functional matching.

"During decomposition, component specifications are compared to the
functional specification of available library cells; matching cells are
mapped into the design space. ... By performing a functional match, we
avoid the complexity of subgraph isomorphism inherent in DAG matching."
(paper section 5)

A cell matches a specification when their component types and widths
agree and the cell's capabilities cover the specification's
requirements.  A cell may be *richer* than the specification -- extra
capability pins are adapted: unneeded inputs are tied to their neutral
level and unneeded outputs left dangling.  A cell can never be *poorer*
(a missing carry-out cannot be conjured), and operation lists for
select-encoded components must match exactly, because the select
encoding is part of the function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from typing import TYPE_CHECKING

from repro.core.specs import ComponentSpec

if TYPE_CHECKING:  # avoid a circular import with repro.techlib
    from repro.techlib.cells import CellLibrary, RTLCell

#: Boolean capability attributes: (attribute, neutral level for the
#: cell pin when the spec does not use the capability).
_CAPABILITY_PINS = (
    ("carry_in", "CI", 0),
    ("enable", "CEN", 1),
    ("async_reset", "ARST", 0),
)

#: Counter-specific capability pins (different names).
_COUNTER_CAPABILITY_PINS = (
    ("enable", "CEN", 1),
    ("async_set", "ASET", 0),
    ("async_reset", "ARESET", 0),
)

#: Output-side capabilities: cell may have them unused; spec may not
#: demand them if the cell lacks them.
_OUTPUT_CAPS = ("carry_out", "group_carry", "complement_out", "valid")

#: Attributes that must be exactly equal for a functional match.
_EXACT_ATTRS = (
    "kind", "n_inputs", "n_outputs", "n_drivers", "width_b", "groups",
    "n_words", "n_read", "n_write", "depth", "style", "cascaded",
    "value", "lsb", "src_width", "direction", "part_widths",
)

#: Component types whose ops tuple is select-encoded (order matters).
_SELECT_ENCODED = {"ALU", "SHIFTER", "BARREL_SHIFTER", "MUX", "SELECTOR"}


@dataclass(frozen=True)
class CellBinding:
    """A cell chosen to implement a spec, plus pin adaptations."""

    cell: "RTLCell"
    tied: Tuple[Tuple[str, int], ...] = ()
    dangling: Tuple[str, ...] = ()

    def describe(self) -> str:
        extras = []
        if self.tied:
            extras.append("tie " + ",".join(f"{p}={v}" for p, v in self.tied))
        if self.dangling:
            extras.append("open " + ",".join(self.dangling))
        suffix = f" [{'; '.join(extras)}]" if extras else ""
        return f"{self.cell.name}{suffix}"


def match_cell(spec: ComponentSpec, cell: "RTLCell") -> Optional[CellBinding]:
    """Functional match of one spec against one cell.

    Returns the binding (with pin adaptations) or ``None``.
    """
    cspec = cell.spec
    if cspec.ctype != spec.ctype:
        return None
    if cspec.width != spec.width:
        return None
    for attr in _EXACT_ATTRS:
        if cspec.get(attr) != spec.get(attr):
            return None

    # Operation coverage.
    spec_ops, cell_ops = spec.ops, cspec.ops
    if spec.ctype in _SELECT_ENCODED:
        if spec_ops != cell_ops:
            return None
    elif spec.ctype in ("COMPARATOR", "COUNTER"):
        if not set(spec_ops) <= set(cell_ops):
            return None
        if spec.ctype == "COUNTER" and spec_ops != cell_ops and set(spec_ops) != set(cell_ops):
            # Extra counter modes would need their control pins tied;
            # handled below only when the pin sets line up.
            pass
    elif spec_ops != cell_ops:
        return None

    tied: Dict[str, int] = {}
    dangling: List[str] = []

    capability_pins = (
        _COUNTER_CAPABILITY_PINS if spec.ctype == "COUNTER" else _CAPABILITY_PINS
    )
    for attr, pin, neutral in capability_pins:
        spec_has = bool(spec.get(attr, False))
        cell_has = bool(cspec.get(attr, False))
        if spec_has and not cell_has:
            return None
        if cell_has and not spec_has:
            tied[pin] = neutral

    if spec.ctype == "COUNTER":
        # Tie off control pins for counter modes the spec does not use.
        mode_pins = {"LOAD": "CLOAD", "COUNT_UP": "CUP", "COUNT_DOWN": "CDOWN"}
        for op, pin in mode_pins.items():
            if op in cell_ops and op not in spec_ops:
                tied[pin] = 0
        # Unused LOAD also leaves the data input; tie it low.
        if "LOAD" in cell_ops and "LOAD" not in spec_ops:
            tied["I0"] = 0

    for attr in _OUTPUT_CAPS:
        spec_has = bool(spec.get(attr, False))
        cell_has = bool(cspec.get(attr, False))
        if spec_has and not cell_has:
            return None
        if cell_has and not spec_has:
            dangling.extend(_output_pins_for(attr))

    if spec.ctype == "COMPARATOR":
        for op in set(cell_ops) - set(spec_ops):
            dangling.append(op)

    return CellBinding(cell, tuple(sorted(tied.items())), tuple(sorted(set(dangling))))


def _output_pins_for(attr: str) -> Tuple[str, ...]:
    if attr == "carry_out":
        return ("CO",)
    if attr == "group_carry":
        return ("G", "P")
    if attr == "complement_out":
        return ("QN",)
    if attr == "valid":
        return ("V",)
    return ()


def matching_cells(spec: ComponentSpec, library: "CellLibrary") -> List[CellBinding]:
    """All cells of a library that functionally match a spec."""
    bindings = []
    for cell in library.cells():
        binding = match_cell(spec, cell)
        if binding is not None:
            bindings.append(binding)
    return bindings
