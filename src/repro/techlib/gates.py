"""Gate-cell access helpers for the control compiler.

The control compiler maps minimized two-level logic onto the SSI gates
of a cell library.  These helpers find the gate cells a library offers
and expose their costs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.specs import ComponentSpec, gate_spec
from repro.techlib.cells import CellLibrary, RTLCell


def find_gate(library: CellLibrary, kind: str, n_inputs: int = 2) -> Optional[RTLCell]:
    """The library's ``kind`` gate with exactly ``n_inputs`` inputs."""
    wanted = gate_spec(kind, n_inputs=n_inputs, width=1)
    for cell in library.cells_of_ctype("GATE"):
        if cell.spec == wanted:
            return cell
    return None


def gate_fanins(library: CellLibrary, kind: str) -> List[int]:
    """Available fan-ins for a gate kind, ascending."""
    result = []
    for cell in library.cells_of_ctype("GATE"):
        if cell.spec.get("kind") == kind and cell.spec.width == 1:
            result.append(cell.spec.get("n_inputs", 2))
    return sorted(set(result))


def gate_inventory(library: CellLibrary) -> Dict[str, List[int]]:
    """kind -> available fan-ins, for every gate kind in the library."""
    inventory: Dict[str, List[int]] = {}
    for cell in library.cells_of_ctype("GATE"):
        kind = cell.spec.get("kind")
        inventory.setdefault(kind, [])
        inventory[kind].append(cell.spec.get("n_inputs", 2))
    return {k: sorted(set(v)) for k, v in inventory.items()}


def has_flip_flop(library: CellLibrary) -> bool:
    """Does the library carry a 1-bit register (for state encoding)?"""
    return any(c.spec.width == 1 for c in library.cells_of_ctype("REG"))
