"""A reconstructed 30-cell subset of the LSI Logic 1.5-micron macrocell
data book [LSIL87].

The paper's Figure-3 experiment uses "a subset of 30 cells from LSI
Logic Inc.'s macrocell data book.  This set includes 2-to-1, 4-to-2,
and 8-to-4 multiplexers, 1-, 2-, and 4-bit adders plus 4-bit carry
look-ahead generators, a 2-bit adder/subtractor, D flip flops, and 4-
and 8-bit data registers."  The original data book is proprietary and
long out of print, so this module reconstructs the subset: exactly the
named cell types, padded to 30 with the SSI gates, decoders, encoder,
counter, and comparator macrocells such data books carried.

Areas are in equivalent NAND gates and delays in nanoseconds,
calibrated to 1.5-micron-era figures (a NAND2 is the unit area and
about 1 ns).  Absolute values are reconstructions; the *ratios* that
drive DTAS's tradeoffs (ripple vs look-ahead vs carry-select) are the
meaningful content.
"""

from __future__ import annotations

from repro.core.specs import make_spec
from repro.techlib.cells import CellLibrary, RTLCell, make_cell

_CACHE = None


def _gates():
    return [
        make_cell("INV", make_spec("GATE", 1, kind="NOT", n_inputs=1),
                  area=1.0, uniform_delay=0.7, description="inverter"),
        make_cell("BUF1", make_spec("GATE", 1, kind="BUF", n_inputs=1),
                  area=1.0, uniform_delay=0.9, description="buffer"),
        make_cell("NAND2", make_spec("GATE", 1, kind="NAND", n_inputs=2),
                  area=1.0, uniform_delay=0.9),
        make_cell("NAND3", make_spec("GATE", 1, kind="NAND", n_inputs=3),
                  area=1.5, uniform_delay=1.1),
        make_cell("NAND4", make_spec("GATE", 1, kind="NAND", n_inputs=4),
                  area=2.0, uniform_delay=1.3),
        make_cell("NOR2", make_spec("GATE", 1, kind="NOR", n_inputs=2),
                  area=1.0, uniform_delay=1.0),
        make_cell("NOR3", make_spec("GATE", 1, kind="NOR", n_inputs=3),
                  area=1.5, uniform_delay=1.3),
        make_cell("AND2", make_spec("GATE", 1, kind="AND", n_inputs=2),
                  area=1.5, uniform_delay=1.3),
        make_cell("OR2", make_spec("GATE", 1, kind="OR", n_inputs=2),
                  area=1.5, uniform_delay=1.4),
        make_cell("XOR2", make_spec("GATE", 1, kind="XOR", n_inputs=2),
                  area=3.0, uniform_delay=1.8),
        make_cell("XNOR2", make_spec("GATE", 1, kind="XNOR", n_inputs=2),
                  area=3.0, uniform_delay=1.9),
    ]


def _muxes():
    return [
        make_cell("MUX21", make_spec("MUX", 1, n_inputs=2),
                  area=3.0, uniform_delay=1.6,
                  delays={("S", "O"): 1.8},
                  description="2-to-1 multiplexer"),
        make_cell("MUX41", make_spec("MUX", 1, n_inputs=4),
                  area=6.0, uniform_delay=2.4,
                  delays={("S", "O"): 2.7},
                  description="4-to-1 multiplexer"),
        make_cell("MUX81", make_spec("MUX", 1, n_inputs=8),
                  area=12.0, uniform_delay=3.2,
                  delays={("S", "O"): 3.6},
                  description="8-to-1 multiplexer"),
        make_cell("MUX22", make_spec("MUX", 2, n_inputs=2),
                  area=6.0, uniform_delay=1.6,
                  delays={("S", "O"): 1.8},
                  description="dual 2-to-1 multiplexer (4-to-2)"),
        make_cell("MUX24", make_spec("MUX", 4, n_inputs=2),
                  area=11.0, uniform_delay=1.7,
                  delays={("S", "O"): 1.9},
                  description="quad 2-to-1 multiplexer (8-to-4)"),
    ]


def _adders():
    add1 = make_spec("ADD", 1, carry_in=True, carry_out=True, group_carry=True)
    add2 = make_spec("ADD", 2, carry_in=True, carry_out=True, group_carry=True)
    add4 = make_spec("ADD", 4, carry_in=True, carry_out=True, group_carry=True)
    return [
        make_cell("ADD1", add1, area=7.0, delays={
            ("A", "S"): 2.9, ("B", "S"): 2.9, ("CI", "S"): 2.0,
            ("A", "CO"): 2.7, ("B", "CO"): 2.7, ("CI", "CO"): 2.6,
            ("A", "G"): 1.3, ("B", "G"): 1.3,
            ("A", "P"): 1.4, ("B", "P"): 1.4,
        }, description="1-bit full adder"),
        make_cell("ADD2", add2, area=15.0, delays={
            ("A", "S"): 4.8, ("B", "S"): 4.8, ("CI", "S"): 4.4,
            ("A", "CO"): 4.9, ("B", "CO"): 4.9, ("CI", "CO"): 4.6,
            ("A", "G"): 2.6, ("B", "G"): 2.6,
            ("A", "P"): 2.2, ("B", "P"): 2.2,
        }, description="2-bit adder"),
        make_cell("ADD4", add4, area=32.0, delays={
            ("A", "S"): 9.6, ("B", "S"): 9.6, ("CI", "S"): 8.6,
            ("A", "CO"): 9.8, ("B", "CO"): 9.8, ("CI", "CO"): 8.4,
            ("A", "G"): 5.5, ("B", "G"): 5.5,
            ("A", "P"): 4.0, ("B", "P"): 4.0,
        }, description="4-bit adder with internal look-ahead"),
        make_cell("CLA4", make_spec("CLA_GEN", 1, groups=4), area=14.0, delays={
            ("G", "C"): 3.5, ("P", "C"): 3.5, ("CI", "C"): 2.5,
            ("G", "GG"): 4.0, ("P", "GG"): 4.2, ("P", "GP"): 3.0,
        }, description="4-bit carry look-ahead generator"),
        make_cell("ADSU2",
                  make_spec("ADDSUB", 2, carry_in=True, carry_out=True),
                  area=18.0, delays={
                      ("A", "S"): 5.4, ("B", "S"): 5.4, ("M", "S"): 6.0,
                      ("CI", "S"): 4.6, ("A", "CO"): 5.5, ("B", "CO"): 5.5,
                      ("M", "CO"): 6.1, ("CI", "CO"): 4.8,
                  }, description="2-bit adder/subtractor"),
    ]


def _sequential():
    return [
        make_cell("DFF1", make_spec("REG", 1),
                  area=6.0, clk_to_q=1.6, setup=1.2,
                  description="D flip-flop"),
        make_cell("DFFR1", make_spec("REG", 1, async_reset=True),
                  area=7.0, clk_to_q=1.7, setup=1.2,
                  description="D flip-flop with asynchronous reset"),
        make_cell("REG4", make_spec("REG", 4),
                  area=22.0, clk_to_q=1.8, setup=1.3,
                  description="4-bit data register"),
        make_cell("REG8", make_spec("REG", 8),
                  area=42.0, clk_to_q=1.8, setup=1.4,
                  description="8-bit data register"),
        make_cell("CNT4",
                  make_spec("COUNTER", 4,
                            ops=("LOAD", "COUNT_UP", "COUNT_DOWN"),
                            style="SYNCHRONOUS", enable=True, carry_out=True),
                  area=38.0, clk_to_q=2.0, setup=1.5,
                  delays={("CEN", "CO"): 2.8, ("CUP", "CO"): 2.5,
                          ("CDOWN", "CO"): 2.5},
                  description="4-bit synchronous up/down counter"),
    ]


def _msi():
    return [
        make_cell("DEC24", make_spec("DECODER", 2, enable=True),
                  area=5.0, uniform_delay=1.8,
                  description="2-to-4 decoder with enable"),
        make_cell("DEC38", make_spec("DECODER", 3, enable=True),
                  area=11.0, uniform_delay=2.4,
                  description="3-to-8 decoder with enable"),
        make_cell("ENC83", make_spec("ENCODER", 3, n_inputs=8, valid=True),
                  area=12.0, uniform_delay=3.4,
                  description="8-to-3 priority encoder"),
        make_cell("CMP4",
                  make_spec("COMPARATOR", 4, ops=("EQ", "LT", "GT"),
                            cascaded=True),
                  area=16.0, delays={
                      ("A", "EQ"): 4.4, ("B", "EQ"): 4.4,
                      ("A", "LT"): 4.6, ("B", "LT"): 4.6,
                      ("A", "GT"): 4.6, ("B", "GT"): 4.6,
                      ("EQ_IN", "EQ"): 1.6,
                      ("EQ_IN", "LT"): 1.8, ("LT_IN", "LT"): 1.6,
                      ("EQ_IN", "GT"): 1.8, ("GT_IN", "GT"): 1.6,
                  },
                  description="4-bit cascadable magnitude comparator"),
    ]


def lsi_logic_library(fresh: bool = False) -> CellLibrary:
    """The 30-cell LSI Logic 1.5-micron subset (cached singleton)."""
    global _CACHE
    if _CACHE is not None and not fresh:
        return _CACHE
    cells = _gates() + _muxes() + _adders() + _sequential() + _msi()
    library = CellLibrary("LSI-1.5u-subset", cells)
    if len(library) != 30:
        raise AssertionError(
            f"LSI subset must have exactly 30 cells, has {len(library)}"
        )
    if not fresh:
        _CACHE = library
    return library
