"""A text "databook" format for RTL cell libraries.

The paper's flow treats data-book components as RTL library cells; this
module gives the reproduction a concrete interchange format so new
libraries can be loaded without writing Python::

    LIBRARY ACME-1.0u
    CELL AADD8  "8-bit adder"
      TYPE ADD WIDTH 8
      ATTR carry_in=1 carry_out=1 group_carry=1
      AREA 68.0
      DELAY A S 7.4
      DELAY CI CO 6.2
      SEQ clk_to_q=1.0 setup=0.8
    END

Attribute values: integers stay integers, ``a,b,c`` becomes a tuple,
known boolean capabilities are normalized by ``make_spec``, everything
else is a string.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.specs import make_spec
from repro.techlib.cells import CellLibrary, RTLCell, make_cell


class DatabookError(ValueError):
    """Malformed databook text; the message carries the line number."""


def _parse_value(text: str):
    if "," in text:
        return tuple(_parse_value(part) for part in text.split(","))
    try:
        return int(text)
    except ValueError:
        return text


def load_databook(text: str) -> CellLibrary:
    """Parse databook text into a :class:`CellLibrary`."""
    library_name = "databook"
    cells: List[RTLCell] = []

    name: Optional[str] = None
    description = ""
    ctype: Optional[str] = None
    width = 1
    attrs: Dict[str, object] = {}
    area = 0.0
    delays: Dict[Tuple[str, str], float] = {}
    clk_to_q = 0.0
    setup = 0.0

    def flush(line_no: int) -> None:
        nonlocal name
        if name is None:
            return
        if ctype is None:
            raise DatabookError(f"line {line_no}: cell {name!r} has no TYPE")
        spec = make_spec(ctype, width, **attrs)
        cells.append(
            make_cell(name, spec, area, delays=delays or None,
                      clk_to_q=clk_to_q, setup=setup, description=description)
        )
        name = None

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        keyword = fields[0].upper()
        try:
            if keyword == "LIBRARY":
                library_name = fields[1]
            elif keyword == "CELL":
                flush(line_no)
                name = fields[1]
                quoted = raw.split('"')
                description = quoted[1] if len(quoted) >= 3 else ""
                ctype, width, attrs = None, 1, {}
                area, delays, clk_to_q, setup = 0.0, {}, 0.0, 0.0
            elif keyword == "TYPE":
                ctype = fields[1].upper()
                if len(fields) >= 4 and fields[2].upper() == "WIDTH":
                    width = int(fields[3])
            elif keyword == "ATTR":
                for pair in fields[1:]:
                    key, _, value = pair.partition("=")
                    attrs[key] = _parse_value(value)
            elif keyword == "AREA":
                area = float(fields[1])
            elif keyword == "DELAY":
                delays[(fields[1], fields[2])] = float(fields[3])
            elif keyword == "SEQ":
                for pair in fields[1:]:
                    key, _, value = pair.partition("=")
                    if key == "clk_to_q":
                        clk_to_q = float(value)
                    elif key == "setup":
                        setup = float(value)
                    else:
                        raise DatabookError(
                            f"line {line_no}: unknown SEQ field {key!r}"
                        )
            elif keyword == "END":
                flush(line_no)
            else:
                raise DatabookError(f"line {line_no}: unknown keyword {keyword!r}")
        except (IndexError, ValueError) as exc:
            if isinstance(exc, DatabookError):
                raise
            raise DatabookError(f"line {line_no}: {exc}") from exc
    flush(len(text.splitlines()) + 1)
    return CellLibrary(library_name, cells)


def dump_databook(library: CellLibrary) -> str:
    """Render a library back to databook text (round-trips with
    :func:`load_databook`)."""
    from repro.netlist.timing import CLK_PIN

    lines = [f"LIBRARY {library.name}"]
    for cell in library.cells():
        header = f"CELL {cell.name}"
        if cell.description:
            header += f'  "{cell.description}"'
        lines.append(header)
        lines.append(f"  TYPE {cell.spec.ctype} WIDTH {cell.spec.width}")
        if cell.spec.attrs:
            rendered = []
            for key, value in cell.spec.attrs:
                if isinstance(value, bool):
                    value = int(value)
                elif isinstance(value, tuple):
                    value = ",".join(str(v) for v in value)
                rendered.append(f"{key}={value}")
            lines.append(f"  ATTR {' '.join(rendered)}")
        lines.append(f"  AREA {cell.area}")
        for (pin_in, pin_out), value in cell.delays:
            if CLK_PIN in (pin_in, pin_out):
                continue  # regenerated from SEQ on load
            lines.append(f"  DELAY {pin_in} {pin_out} {value}")
        if cell.clk_to_q or cell.setup:
            lines.append(f"  SEQ clk_to_q={cell.clk_to_q} setup={cell.setup}")
        lines.append("END")
    return "\n".join(lines) + "\n"
