"""A second, fictitious vendor data book ("ACME 1.0-micron") used to
demonstrate LOLA-style retargeting.

Its cell mix differs deliberately from the LSI subset: adders come only
8 bits wide, registers 2 and 16 bits, the counter 8 bits, the
comparator 2 bits, there is no quad mux and no 8:1 mux, and delays are
roughly 0.6x (one process generation ahead).  The hand-written LSI
rules (ripple-4, quad-mux, 8/4/1 register packing...) are useless here;
LOLA regenerates the right ones from the same abstract principles.
"""

from __future__ import annotations

from repro.core.specs import make_spec
from repro.techlib.cells import CellLibrary, make_cell

_CACHE = None


def vendor2_library(fresh: bool = False) -> CellLibrary:
    """The ACME 1.0-micron library (cached singleton)."""
    global _CACHE
    if _CACHE is not None and not fresh:
        return _CACHE
    cells = [
        make_cell("AINV", make_spec("GATE", 1, kind="NOT", n_inputs=1),
                  area=1.0, uniform_delay=0.4),
        make_cell("ABUF", make_spec("GATE", 1, kind="BUF", n_inputs=1),
                  area=1.0, uniform_delay=0.5),
        make_cell("ANAND2", make_spec("GATE", 1, kind="NAND", n_inputs=2),
                  area=1.0, uniform_delay=0.5),
        make_cell("ANOR2", make_spec("GATE", 1, kind="NOR", n_inputs=2),
                  area=1.0, uniform_delay=0.6),
        make_cell("AAND2", make_spec("GATE", 1, kind="AND", n_inputs=2),
                  area=1.4, uniform_delay=0.8),
        make_cell("AOR2", make_spec("GATE", 1, kind="OR", n_inputs=2),
                  area=1.4, uniform_delay=0.8),
        make_cell("AXOR2", make_spec("GATE", 1, kind="XOR", n_inputs=2),
                  area=2.6, uniform_delay=1.1),
        make_cell("AXNOR2", make_spec("GATE", 1, kind="XNOR", n_inputs=2),
                  area=2.6, uniform_delay=1.1),
        make_cell("AMUX21", make_spec("MUX", 1, n_inputs=2),
                  area=2.8, uniform_delay=0.9, delays={("S", "O"): 1.1}),
        make_cell("AMUX41", make_spec("MUX", 1, n_inputs=4),
                  area=5.5, uniform_delay=1.4, delays={("S", "O"): 1.6}),
        make_cell("AADD8",
                  make_spec("ADD", 8, carry_in=True, carry_out=True,
                            group_carry=True),
                  area=68.0, delays={
                      ("A", "S"): 7.4, ("B", "S"): 7.4, ("CI", "S"): 6.6,
                      ("A", "CO"): 7.6, ("B", "CO"): 7.6, ("CI", "CO"): 6.2,
                      ("A", "G"): 4.4, ("B", "G"): 4.4,
                      ("A", "P"): 3.2, ("B", "P"): 3.2,
                  }, description="8-bit adder with internal look-ahead"),
        make_cell("AADSU4",
                  make_spec("ADDSUB", 4, carry_in=True, carry_out=True),
                  area=40.0, delays={
                      ("A", "S"): 5.0, ("B", "S"): 5.0, ("M", "S"): 5.6,
                      ("CI", "S"): 4.2, ("A", "CO"): 5.2, ("B", "CO"): 5.2,
                      ("M", "CO"): 5.8, ("CI", "CO"): 4.4,
                  }, description="4-bit adder/subtractor"),
        make_cell("ADFF", make_spec("REG", 1),
                  area=5.5, clk_to_q=1.0, setup=0.8),
        make_cell("ADFFR", make_spec("REG", 1, async_reset=True),
                  area=6.5, clk_to_q=1.1, setup=0.8),
        make_cell("AREG2", make_spec("REG", 2),
                  area=10.5, clk_to_q=1.0, setup=0.8),
        make_cell("AREG16", make_spec("REG", 16),
                  area=78.0, clk_to_q=1.1, setup=0.9),
        make_cell("ACNT8",
                  make_spec("COUNTER", 8,
                            ops=("LOAD", "COUNT_UP", "COUNT_DOWN"),
                            style="SYNCHRONOUS", enable=True, carry_out=True),
                  area=72.0, clk_to_q=1.2, setup=1.0,
                  delays={("CEN", "CO"): 1.8, ("CUP", "CO"): 1.6,
                          ("CDOWN", "CO"): 1.6}),
        make_cell("ACMP2",
                  make_spec("COMPARATOR", 2, ops=("EQ", "LT", "GT"),
                            cascaded=True),
                  area=8.5, delays={
                      ("A", "EQ"): 2.4, ("B", "EQ"): 2.4,
                      ("A", "LT"): 2.6, ("B", "LT"): 2.6,
                      ("A", "GT"): 2.6, ("B", "GT"): 2.6,
                      ("EQ_IN", "EQ"): 0.9,
                      ("EQ_IN", "LT"): 1.0, ("LT_IN", "LT"): 0.9,
                      ("EQ_IN", "GT"): 1.0, ("GT_IN", "GT"): 0.9,
                  }),
        make_cell("ADEC24", make_spec("DECODER", 2, enable=True),
                  area=4.5, uniform_delay=1.1),
    ]
    library = CellLibrary("ACME-1.0u", cells)
    if not fresh:
        _CACHE = library
    return library
