"""RTL cell and cell-library model.

The paper's central matching idea: "Technology mapping is performed
using the functional specification of library cells, as opposed to a
DAG description of their Boolean behavior."  Accordingly an
:class:`RTLCell` is just a :class:`~repro.core.specs.ComponentSpec`
with a name, an area, and a pin-to-pin delay matrix -- no gate network.

Delay matrices map ``(input_pin, output_pin)`` to nanoseconds; pairs
with no combinational arc (e.g. through a flip-flop's clock boundary)
are simply absent.  ``clk_to_q`` covers the sequential case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.specs import ComponentSpec, port_signature
from repro.netlist.ports import PinKind


@dataclass(frozen=True)
class RTLCell:
    """One data-book cell."""

    name: str
    spec: ComponentSpec
    area: float
    delays: Tuple[Tuple[Tuple[str, str], float], ...]
    clk_to_q: float = 0.0
    setup: float = 0.0
    description: str = ""

    def delay_matrix(self) -> Dict[Tuple[str, str], float]:
        return dict(self.delays)

    def worst_delay(self) -> float:
        return max((d for _, d in self.delays), default=self.clk_to_q)

    def pin_names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in port_signature(self.spec))

    def __str__(self) -> str:
        return f"{self.name} ({self.spec}) {self.area:.0f} gates"


def make_cell(
    name: str,
    spec: ComponentSpec,
    area: float,
    delays: Optional[Mapping[Tuple[str, str], float]] = None,
    uniform_delay: Optional[float] = None,
    clk_to_q: float = 0.0,
    setup: float = 0.0,
    description: str = "",
) -> RTLCell:
    """Create a cell, validating the delay matrix against the spec.

    ``uniform_delay`` fills the full combinational matrix (every
    non-clock input to every output) with one value; explicit entries in
    ``delays`` override it.
    """
    from repro.netlist.timing import CLK_PIN

    ports = port_signature(spec)
    inputs = [p for p in ports if p.is_input and not p.is_sequential_boundary]
    outputs = [p for p in ports if p.is_output]
    matrix: Dict[Tuple[str, str], float] = {}
    if uniform_delay is not None and not spec.is_sequential:
        for pin_in in inputs:
            for pin_out in outputs:
                matrix[(pin_in.name, pin_out.name)] = uniform_delay
    if spec.is_sequential:
        # Publish setup and clock-to-output arcs through the virtual
        # clock pin so register-to-register paths compose structurally.
        for pin_in in inputs:
            matrix[(pin_in.name, CLK_PIN)] = setup
        for pin_out in outputs:
            matrix[(CLK_PIN, pin_out.name)] = clk_to_q
    if delays:
        input_names = {p.name for p in inputs} | {CLK_PIN}
        output_names = {p.name for p in outputs} | {CLK_PIN}
        for (pin_in, pin_out), value in delays.items():
            if pin_in not in input_names:
                raise ValueError(f"cell {name}: unknown input pin {pin_in!r} in delays")
            if pin_out not in output_names:
                raise ValueError(f"cell {name}: unknown output pin {pin_out!r} in delays")
            matrix[(pin_in, pin_out)] = value
    return RTLCell(
        name=name,
        spec=spec,
        area=float(area),
        delays=tuple(sorted(matrix.items())),
        clk_to_q=clk_to_q,
        setup=setup,
        description=description,
    )


class CellLibrary:
    """A named collection of RTL cells (one vendor data book subset)."""

    def __init__(self, name: str, cells: Iterable[RTLCell] = ()) -> None:
        self.name = name
        self._cells: Dict[str, RTLCell] = {}
        for cell in cells:
            self.add(cell)

    def add(self, cell: RTLCell) -> None:
        if cell.name in self._cells:
            raise ValueError(f"library {self.name!r}: duplicate cell {cell.name!r}")
        self._cells[cell.name] = cell

    def cell(self, name: str) -> RTLCell:
        return self._cells[name]

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __len__(self) -> int:
        return len(self._cells)

    def __iter__(self):
        return iter(self.cells())

    def cells(self) -> List[RTLCell]:
        return [self._cells[name] for name in sorted(self._cells)]

    def cells_of_ctype(self, ctype: str) -> List[RTLCell]:
        return [c for c in self.cells() if c.spec.ctype == ctype]

    def ctypes(self) -> List[str]:
        return sorted({c.spec.ctype for c in self.cells()})

    def widths_of_ctype(self, ctype: str) -> List[int]:
        """Distinct widths available for a component type (ascending).
        Used by library-specific rules and by LOLA."""
        return sorted({c.spec.width for c in self.cells_of_ctype(ctype)})

    def subset(self, names: Iterable[str], name: Optional[str] = None) -> "CellLibrary":
        picked = [self._cells[n] for n in names]
        return CellLibrary(name or f"{self.name}-subset", picked)

    def __repr__(self) -> str:
        return f"CellLibrary({self.name!r}, cells={len(self._cells)})"
