"""Technology-specific RTL cell libraries.

An RTL cell is a data-book component: a functional specification (the
*same* representation language as GENUS components, which is what makes
DTAS's functional matching work) plus area in equivalent NAND gates and
pin-to-pin delays in nanoseconds.

- :mod:`repro.techlib.cells` -- the cell and library model;
- :mod:`repro.techlib.lsi_logic` -- a reconstructed 30-cell subset of
  the LSI Logic 1.5-micron macrocell data book used in the paper's
  evaluation;
- :mod:`repro.techlib.vendor2` -- a second, fictitious vendor library
  used to exercise LOLA retargeting;
- :mod:`repro.techlib.gates` -- SSI gate cells for the control compiler;
- :mod:`repro.techlib.databook` -- a text format for loading libraries.
"""

from repro.techlib.cells import CellLibrary, RTLCell
from repro.techlib.databook import dump_databook, load_databook
from repro.techlib.lsi_logic import lsi_logic_library
from repro.techlib.vendor2 import vendor2_library

__all__ = [
    "CellLibrary",
    "RTLCell",
    "dump_databook",
    "load_databook",
    "lsi_logic_library",
    "vendor2_library",
]
