"""``repro.fleet`` -- the multi-worker serving tier.

A front router over N supervised ``repro serve`` worker processes:
``python -m repro fleet --workers N --port P`` shards ``POST
/synthesize`` by consistent hashing over the request's routing key
(identical requests -> same worker, so per-worker coalescing stays
exact fleet-wide), splits ``POST /batch`` per item, aggregates worker
``GET /metrics`` under one endpoint, restarts crashed workers with
backoff, and drains gracefully on SIGTERM.  Stdlib only; same HTTP
conventions as :mod:`repro.serve`.

Embedding::

    from repro.fleet import FleetRouter, FleetService

    fleet = FleetService(workers=2, store=store_path)
    router = FleetRouter(fleet, port=0)
    handle = router.run_in_thread()     # bound port: handle.port
    ...
    handle.stop()
"""

from repro.fleet.router import (
    BACKOFF_BASE,
    BACKOFF_MAX,
    VNODES,
    FleetError,
    FleetRouter,
    FleetService,
    HashRing,
    WorkerFailure,
    WorkerHandle,
    aggregate_metrics,
    routing_key,
    run_fleet,
)

__all__ = [
    "BACKOFF_BASE",
    "BACKOFF_MAX",
    "VNODES",
    "FleetError",
    "FleetRouter",
    "FleetService",
    "HashRing",
    "WorkerFailure",
    "WorkerHandle",
    "aggregate_metrics",
    "routing_key",
    "run_fleet",
]
