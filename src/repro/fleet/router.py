"""The fleet router: one front door over N ``repro serve`` workers.

``python -m repro fleet --workers N`` spawns N ``repro serve``
processes on ephemeral local ports -- all sharing one result/node
store file -- and serves the same four endpoints in front of them:

- ``POST /synthesize`` is routed by *consistent hashing* over the
  request's routing key (the canonical form of exactly the fields that
  enter the store fingerprint: session parameters plus the request
  itself).  Identical requests therefore always land on the same
  worker, so the worker's in-flight coalescing stays exact across the
  whole fleet: N concurrent duplicates anywhere still trigger exactly
  one engine evaluation.  The original body bytes are forwarded
  untouched, so worker-side fingerprints -- and response bodies -- are
  byte-identical to a direct single-process run.
- ``POST /batch`` is split per item, each routed to its owning worker
  concurrently, and reassembled into the exact ``{"jobs": [...]}``
  bytes a single worker would have produced.
- ``GET /metrics`` aggregates every live worker's counters (sums;
  element-wise sums for the fixed-bucket latency histograms, which is
  why the buckets are fixed) and adds the router's own counters:
  per-worker routed requests, worker restarts, rejected requests, and
  the router's in-flight queue depth.
- ``GET /healthz`` reports per-worker liveness.

Supervision: a crashed worker is restarted with exponential backoff
and -- because the hash ring's points are a pure function of the slot
index -- re-owns exactly its old shard when it comes back; while it is
down, lookups walk the ring to the next *live* slot, so only the dead
slot's keys remap.  503 is returned only when no live worker owns the
shard (every worker down or restarting).

SIGTERM/SIGINT drain the router's in-flight requests (bounded by
``--drain-timeout``), then SIGTERM the workers so each drains and
closes its stores cleanly.

Everything is stdlib, same HTTP conventions as :mod:`repro.serve`.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import json
import os
import re
import sys
from collections import deque
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.obs.prom import CONTENT_TYPE as PROM_CONTENT_TYPE
from repro.obs.prom import prometheus_text
from repro.obs.trace import (
    ATTEMPTS_HEADER,
    NULL_SPAN,
    PARENT_HEADER,
    TRACE_HEADER,
    Tracer,
    current_span,
    filter_traces,
    group_spans,
)
from repro.resilience import (
    BREAKER_RESET,
    BREAKER_THRESHOLD,
    Deadline,
    parse_chaos,
)
from repro.obs.accesslog import AccessLog
from repro.obs.slo import SLOEngine
from repro.obs.timeseries import HistorySampler, MetricsHistory
from repro.serve.server import (
    DEFAULT_PORT,
    LATENCY_BUCKETS,
    MAX_BODY_BYTES,
    SESSION_PARAMS,
    Metrics,
    ReproServer,
    ServeError,
    ServerThread,
    _deadline_error,
    _dashboard_body,
    _history_body,
    _query_format,
    _resolve_objectives,
    _slo_body,
    _trace_filters,
    install_signal_handlers,
)

#: The worker ready line (what ``repro serve`` prints on startup).
READY_PATTERN = re.compile(r"listening on http://([\d.]+):(\d+)")

#: Virtual nodes per worker slot: enough that shard sizes are within a
#: few percent of uniform for small fleets, cheap enough that ring
#: construction stays trivial.
VNODES = 64

#: Restart backoff: ``base * 2**consecutive_failures`` seconds,
#: capped.  A worker that comes back healthy resets the failure count.
BACKOFF_BASE = 0.5
BACKOFF_MAX = 10.0

#: The engine can legitimately take minutes on a cold wide request.
REQUEST_TIMEOUT = 600.0

WORKER_READY_TIMEOUT = 60.0

_NAME_PARAMS = ("library", "rulebase", "filter", "order")
_REQUEST_FIELDS = ("spec", "legend", "generator", "params", "label")

#: Session-parameter defaults mirrored from
#: :class:`repro.serve.server.SynthesisService` -- the router must
#: normalize a request exactly the way a worker will, so a request
#: that *spells out* a default routes to the same shard as one that
#: omits it.
_BASE_DEFAULTS: Dict[str, Any] = {
    "library": "lsi_logic",
    "rulebase": None,
    "filter": "pareto",
    "order": None,
    "max_combinations": None,
    "batch": None,
}


class FleetError(Exception):
    """A fleet-level startup or supervision failure."""


class WorkerFailure(ServeError):
    """A worker connect/read failure mid-request -- the *retryable*
    proxy error: ``/synthesize`` is idempotent (content-addressed,
    byte-identical by construction), so the router may replay the
    request against the next live ring slot.  Timeouts are NOT this
    class: a slow worker may still be computing, and replaying a
    request that exhausted its budget cannot meet the budget either."""

    def __init__(self, slot: int, message: str) -> None:
        super().__init__(502, message)
        self.slot = slot


def routing_key(body: Dict[str, Any],
                defaults: Optional[Dict[str, Any]] = None) -> str:
    """The consistent-hashing key for one ``/synthesize`` body.

    Canonicalizes exactly the fields that enter the store fingerprint
    -- the session parameters (defaults applied, registry names
    canonicalized the way :class:`~repro.api.registry.Registry` does)
    plus the request fields -- so two requests that an individual
    worker would coalesce always hash to the same worker.  This is a
    *routing* key, not the store fingerprint itself: it never loads a
    library or rulebase, so the router stays library-blind and
    forwards the original bytes untouched.
    """
    params = dict(_BASE_DEFAULTS)
    if defaults:
        params.update(defaults)
    for key in SESSION_PARAMS:
        if key in body:
            params[key] = body[key]
    normalized: Dict[str, Any] = {}
    for key in SESSION_PARAMS:
        value = params.get(key)
        if key in _NAME_PARAMS and isinstance(value, str):
            value = value.strip().lower().replace("-", "_")
        if key == "max_combinations" and value is not None:
            try:
                value = int(value)
            except (TypeError, ValueError):
                pass  # the worker will 400 it; route it anywhere stable
        normalized[key] = value
    request_fields = {
        key: body.get(key) for key in _REQUEST_FIELDS if key in body
    }
    blob = json.dumps(
        {"request": request_fields, "session": normalized},
        sort_keys=True, separators=(",", ":"), default=repr,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class HashRing:
    """Consistent hashing over worker *slot indices*.

    Every slot contributes :data:`VNODES` points that are a pure
    function of the slot index -- never of the process or port -- so a
    restarted worker re-owns exactly the shard its predecessor had.
    Lookups walk clockwise to the first **live** slot: while a slot is
    down only its own keys remap (to their clockwise successors); the
    rest of the keyspace does not move.
    """

    def __init__(self, slots: int, vnodes: int = VNODES) -> None:
        if slots < 1:
            raise ValueError("a hash ring needs at least one slot")
        self.slots = slots
        self.vnodes = vnodes
        points: List[Tuple[int, int]] = []
        for slot in range(slots):
            for v in range(vnodes):
                digest = hashlib.sha256(
                    f"repro-fleet:slot={slot}:vnode={v}".encode("ascii")
                ).digest()
                points.append((int.from_bytes(digest[:8], "big"), slot))
        points.sort()
        self._points = points
        self._keys = [point for point, _ in points]

    def owner(self, key: str,
              live: Optional[Set[int]] = None) -> Optional[int]:
        """The slot owning hex ``key``, restricted to ``live`` slots
        (None = all slots live).  None when no live slot exists."""
        if live is not None and not live:
            return None
        point = int(key[:16], 16)
        count = len(self._points)
        start = bisect.bisect_right(self._keys, point) % count
        if live is None:
            return self._points[start][1]
        for i in range(count):
            slot = self._points[(start + i) % count][1]
            if slot in live:
                return slot
        return None


class WorkerHandle:
    """One supervised ``repro serve`` subprocess."""

    def __init__(self, slot: int, argv: List[str],
                 env: Dict[str, str]) -> None:
        self.slot = slot
        self.argv = argv
        self.env = env
        self.proc: Optional[asyncio.subprocess.Process] = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self.ready = False
        self.restarts = 0       # lifetime restarts (metrics)
        self.failures = 0       # consecutive failures (backoff)
        self.log_lines: "deque[str]" = deque(maxlen=200)
        self._drain_task: Optional[asyncio.Task] = None

    async def spawn(self, timeout: float = WORKER_READY_TIMEOUT) -> None:
        """Start the subprocess and wait for its ready line."""
        self.ready = False
        self.proc = await asyncio.create_subprocess_exec(
            *self.argv, env=self.env,
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.STDOUT,
        )
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        try:
            while True:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    raise FleetError(
                        f"worker {self.slot} did not report a listening "
                        f"address within {timeout:.0f}s")
                try:
                    line = await asyncio.wait_for(
                        self.proc.stdout.readline(), timeout=remaining)
                except (asyncio.TimeoutError, TimeoutError):
                    continue
                if not line:
                    raise FleetError(
                        f"worker {self.slot} exited before becoming ready "
                        f"(rc={self.proc.returncode}):\n" + self.log())
                text = line.decode("utf-8", errors="replace").rstrip()
                self.log_lines.append(text)
                match = READY_PATTERN.search(text)
                if match:
                    self.host = match.group(1)
                    self.port = int(match.group(2))
                    break
        except FleetError:
            self.terminate()
            raise
        self.ready = True
        # Keep draining stdout so the pipe never fills and the last
        # lines are available for crash reports.
        self._drain_task = asyncio.ensure_future(self._drain())

    async def _drain(self) -> None:
        assert self.proc is not None
        while True:
            line = await self.proc.stdout.readline()
            if not line:
                break
            self.log_lines.append(
                line.decode("utf-8", errors="replace").rstrip())

    def log(self) -> str:
        return "\n".join(self.log_lines)

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.returncode is None

    def terminate(self) -> None:
        if self.alive:
            try:
                self.proc.terminate()
            except ProcessLookupError:
                pass

    def kill(self) -> None:
        if self.alive:
            try:
                self.proc.kill()
            except ProcessLookupError:
                pass


async def _http_request(host: str, port: int, method: str, path: str,
                        body: bytes = b"",
                        timeout: float = REQUEST_TIMEOUT,
                        extra_headers: Optional[Dict[str, str]] = None
                        ) -> Tuple[int, Dict[str, str], bytes]:
    """One ``Connection: close`` HTTP exchange against a worker."""

    async def exchange() -> Tuple[int, Dict[str, str], bytes]:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            extras = "".join(f"{name}: {value}\r\n"
                             for name, value in (extra_headers or {}).items())
            head = (f"{method} {path} HTTP/1.1\r\n"
                    f"Host: {host}:{port}\r\n"
                    f"Content-Type: application/json; charset=utf-8\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    + extras +
                    f"Connection: close\r\n\r\n")
            writer.write(head.encode("ascii") + body)
            await writer.drain()
            status_line = await reader.readline()
            parts = status_line.split(None, 2)
            if len(parts) < 2:
                raise ConnectionError("malformed status line from worker")
            status = int(parts[1])
            headers: Dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = headers.get("content-length")
            if length is not None:
                payload = await reader.readexactly(int(length))
            else:
                payload = await reader.read()
            return status, headers, payload
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    return await asyncio.wait_for(exchange(), timeout=timeout)


def aggregate_metrics(payloads: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Fleet-wide metrics from N worker ``/metrics`` payloads.

    Counters sum; ``uptime_seconds`` and latency maxima take the max;
    the fixed-bucket latency histograms sum element-wise (valid
    *because* every worker cuts at the same
    :data:`~repro.serve.server.LATENCY_BUCKETS` edges); the latency
    mean is recomputed from the summed totals.  Pure function -- unit
    tests feed it synthetic payloads."""
    summed = ("requests_total", "engine_evaluations", "store_hits",
              "store_misses", "jobs_run", "coalesced", "timeouts",
              "in_flight", "sessions")
    agg: Dict[str, Any] = {key: 0 for key in summed}
    agg["uptime_seconds"] = 0.0
    by_endpoint: Dict[str, int] = {}
    by_status: Dict[str, int] = {}
    traffic_by_status: Dict[str, int] = {}
    phase_seconds: Dict[str, float] = {}
    breakers: Dict[str, Dict[str, Any]] = {}
    node = {"hits": 0, "misses": 0, "published": 0, "errors": 0,
            "hot_entries": 0}
    latency = {"count": 0, "total_seconds": 0.0, "max_seconds": 0.0}
    histograms: Dict[str, Dict[str, List]] = {}
    for payload in payloads:
        for key in summed:
            agg[key] += payload.get(key, 0)
        agg["uptime_seconds"] = max(
            agg["uptime_seconds"], payload.get("uptime_seconds", 0.0))
        for source, target in (
            (payload.get("requests_by_endpoint", {}), by_endpoint),
            (payload.get("responses_by_status", {}), by_status),
            (payload.get("traffic_by_status", {}), traffic_by_status),
        ):
            for key, value in source.items():
                target[key] = target.get(key, 0) + value
        for phase, seconds in payload.get(
                "engine_phase_seconds", {}).items():
            phase_seconds[phase] = phase_seconds.get(phase, 0.0) + seconds
        for key in node:
            node[key] += payload.get("node_cache", {}).get(key, 0)
        # Breakers merge as state *counts* plus summed transition
        # counters: "how many workers are serving degraded, and how
        # often have breakers tripped fleet-wide".
        for kind, stats in payload.get("breakers", {}).items():
            merged = breakers.setdefault(kind, {
                "states": {}, "failures": 0, "short_circuited": 0,
                "opens": 0, "closes": 0, "half_open_probes": 0,
            })
            state = stats.get("state", "closed")
            merged["states"][state] = merged["states"].get(state, 0) + 1
            for key in ("failures", "short_circuited", "opens",
                        "closes", "half_open_probes"):
                merged[key] += stats.get(key, 0)
        worker_latency = payload.get("latency", {})
        latency["count"] += worker_latency.get("count", 0)
        latency["total_seconds"] += worker_latency.get("total_seconds", 0.0)
        latency["max_seconds"] = max(
            latency["max_seconds"], worker_latency.get("max_seconds", 0.0))
        for endpoint, hist in payload.get("latency_histograms", {}).items():
            counts = hist.get("counts", [])
            merged = histograms.setdefault(endpoint, {
                "le_seconds": list(hist.get("le_seconds",
                                            LATENCY_BUCKETS)),
                "counts": [0] * len(counts),
                "sum_seconds": 0.0,
                "exemplars": {},
            })
            if len(merged["counts"]) < len(counts):
                merged["counts"].extend(
                    [0] * (len(counts) - len(merged["counts"])))
            for i, count in enumerate(counts):
                merged["counts"][i] += count
            merged["sum_seconds"] += hist.get("sum_seconds", 0.0)
            # Exemplars merge most-recent-wins per bucket: the fleet
            # view should link each bucket to the newest trace any
            # worker sampled into it.
            for bucket, exemplar in hist.get("exemplars", {}).items():
                kept = merged["exemplars"].get(bucket)
                if kept is None or exemplar.get("timestamp", 0.0) > \
                        kept.get("timestamp", 0.0):
                    merged["exemplars"][bucket] = dict(exemplar)
    latency["mean_seconds"] = (latency["total_seconds"] / latency["count"]
                               if latency["count"] else 0.0)
    agg["requests_by_endpoint"] = by_endpoint
    agg["responses_by_status"] = by_status
    agg["traffic_by_status"] = traffic_by_status
    agg["engine_phase_seconds"] = phase_seconds
    agg["breakers"] = breakers
    agg["node_cache"] = node
    agg["latency"] = latency
    agg["latency_histograms"] = histograms
    agg["workers_reporting"] = len(payloads)
    return agg


class FleetService:
    """Worker fleet: spawn/supervise N serve processes, route by
    consistent hashing, aggregate metrics (transport-agnostic)."""

    def __init__(
        self,
        workers: int = 2,
        store: Any = "default",
        node_store: Any = "auto",
        defaults: Optional[Dict[str, Any]] = None,
        engine_workers: int = 2,
        worker_host: str = "127.0.0.1",
        worker_drain_timeout: float = 10.0,
        backoff_base: float = BACKOFF_BASE,
        backoff_max: float = BACKOFF_MAX,
        request_timeout: float = REQUEST_TIMEOUT,
        ready_timeout: float = WORKER_READY_TIMEOUT,
        request_deadline: Optional[float] = None,
        breaker_threshold: int = BREAKER_THRESHOLD,
        breaker_reset: float = BREAKER_RESET,
        chaos: Optional[str] = None,
        trace_sample: float = 0.0,
        trace_ring: int = 256,
        trace_export: Optional[str] = None,
        access_log: Any = False,
        access_log_max_mb: float = 64.0,
    ) -> None:
        if workers < 1:
            raise ValueError("a fleet needs at least one worker")
        if store is True:
            store = "default"
        if store is not None and not isinstance(store, (str, os.PathLike)):
            raise TypeError(
                "a fleet store must be a string designator (name, path, "
                "or URL) -- workers are separate processes and cannot "
                "share a live store object")
        self.store = store
        self.node_store = node_store
        self.defaults = dict(_BASE_DEFAULTS)
        if defaults:
            self.defaults.update(defaults)
        self.engine_workers = max(1, engine_workers)
        self.worker_host = worker_host
        self.worker_drain_timeout = worker_drain_timeout
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.request_timeout = request_timeout
        self.ready_timeout = ready_timeout
        #: The default per-request budget in seconds (None = unbounded;
        #: ``--request-timeout``); clients can only tighten it via the
        #: ``X-Repro-Deadline-Ms`` header.  Distinct from
        #: ``request_timeout``, the proxy's socket-level bound.
        self.request_deadline = request_deadline
        self.breaker_threshold = breaker_threshold
        self.breaker_reset = breaker_reset
        # Parsed at construction so a malformed --chaos spec is a
        # ValueError (CLI exit 2), not a surprise mid-run.
        self.chaos = parse_chaos(chaos) if chaos else None
        self.metrics = Metrics()  # the router's own HTTP metrics
        # The router samples; a sampled trace id is forwarded to the
        # owning worker, which always records propagated ids, so one
        # fleet request is one trace across both processes.
        self.tracer = Tracer(trace_sample, ring=trace_ring,
                             export_path=trace_export, service="fleet")
        # Same sink contract as the single server: bool (stdout), "-",
        # a file path with size-bounded rotation, or a ready AccessLog.
        self.access_log = (access_log if isinstance(access_log, AccessLog)
                           else AccessLog(access_log,
                                          max_mb=access_log_max_mb))
        self.trace_ring_size = max(1, int(trace_ring))
        self.ring = HashRing(workers)
        argv = self._worker_argv()
        env = self._worker_env()
        self.workers = [WorkerHandle(slot, argv, env)
                        for slot in range(workers)]
        self.routed_by_worker = [0] * workers
        self.worker_restarts = 0
        self.unrouted = 0       # 503s: no live worker owned the shard
        self.proxy_errors = 0   # worker connect/read failures mid-request
        self.retries = 0        # failover attempts after a WorkerFailure
        self.failovers = 0      # requests rescued by a retry
        self.timeouts_504 = 0   # deadline/timeout 504s issued by router
        self.chaos_kills = 0    # workers killed by the chaos loop
        self._supervisors: List[asyncio.Task] = []
        self._chaos_task: Optional[asyncio.Task] = None
        self._closing = False

    # -- worker plumbing ----------------------------------------------
    def _worker_argv(self) -> List[str]:
        argv = [sys.executable, "-m", "repro", "serve",
                "--host", self.worker_host, "--port", "0",
                "--workers", str(self.engine_workers),
                "--drain-timeout", str(self.worker_drain_timeout),
                "--breaker-threshold", str(self.breaker_threshold),
                "--breaker-reset", str(self.breaker_reset),
                # No --trace-sample: workers record exactly the traces
                # the router sampled and propagated.  The ring size
                # matches the router's so neither side evicts first.
                "--trace-ring", str(self.trace_ring_size)]
        if self.request_deadline is not None:
            argv += ["--request-timeout", str(self.request_deadline)]
        if self.store is None:
            argv.append("--no-store")
        else:
            argv += ["--store", str(self.store)]
        if self.node_store is None:
            argv.append("--no-node-store")
        elif self.node_store != "auto":
            argv += ["--node-store", str(self.node_store)]
        d = self.defaults
        argv += ["--library", str(d["library"]),
                 "--filter", str(d["filter"])]
        if d["rulebase"] is not None:
            argv += ["--rulebase", str(d["rulebase"])]
        if d["order"] is not None:
            argv += ["--order", str(d["order"])]
        if d["max_combinations"] is not None:
            argv += ["--max-combinations", str(d["max_combinations"])]
        if d["batch"] is not None:
            argv += ["--batch", str(d["batch"])]
        return argv

    @staticmethod
    def _worker_env() -> Dict[str, str]:
        # The workers must import the same repro package this process
        # did, whether it came from PYTHONPATH, an install, or cwd.
        import repro

        package_root = os.path.dirname(
            os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = package_root + (
            os.pathsep + existing if existing else "")
        return env

    async def start(self) -> None:
        results = await asyncio.gather(
            *(worker.spawn(self.ready_timeout) for worker in self.workers),
            return_exceptions=True)
        failures = [r for r in results if isinstance(r, BaseException)]
        if failures:
            for worker in self.workers:
                worker.terminate()
            raise FleetError(f"fleet startup failed: {failures[0]}")
        for worker in self.workers:
            self._supervisors.append(
                asyncio.ensure_future(self._supervise(worker)))
        if self.chaos is not None:
            self._chaos_task = asyncio.ensure_future(self._chaos_loop())

    async def _supervise(self, worker: WorkerHandle) -> None:
        """Restart ``worker`` with exponential backoff whenever its
        process exits -- until the fleet itself is closing."""
        while not self._closing:
            if worker.proc is not None:
                await worker.proc.wait()
            worker.ready = False
            if self._closing:
                return
            self.worker_restarts += 1
            worker.restarts += 1
            delay = min(self.backoff_base * (2 ** worker.failures),
                        self.backoff_max)
            worker.failures += 1
            await asyncio.sleep(delay)
            if self._closing:
                return
            try:
                await worker.spawn(self.ready_timeout)
            except (FleetError, OSError):
                continue  # next iteration backs off longer
            worker.failures = 0

    async def _chaos_loop(self) -> None:
        """``--chaos kill-worker:PERIOD``: SIGKILL one ready worker
        (round-robin) every PERIOD seconds.  The supervisor restarts it
        with backoff; meanwhile its shard remaps and mid-request
        failures exercise the failover-retry path -- chaos engineering
        run by the service itself, deterministic enough for CI."""
        _, period = self.chaos
        victim = 0
        while not self._closing:
            await asyncio.sleep(period)
            if self._closing:
                return
            ready = [worker for worker in self.workers if worker.ready]
            # Strike only at full strength: at most one worker is ever
            # chaos-down at a time, so the harness exercises failover
            # without ever collapsing the whole fleet into 503s.
            if len(ready) < len(self.workers):
                continue
            worker = ready[victim % len(ready)]
            victim += 1
            self.chaos_kills += 1
            worker.kill()

    def _live_slots(self) -> Set[int]:
        return {worker.slot for worker in self.workers if worker.ready}

    def _owner(self, key: str) -> Optional[WorkerHandle]:
        slot = self.ring.owner(key, self._live_slots())
        return None if slot is None else self.workers[slot]

    async def _proxy(self, worker: WorkerHandle, method: str, path: str,
                     body: bytes = b"",
                     deadline: Optional[Deadline] = None,
                     extra_headers: Optional[Dict[str, str]] = None
                     ) -> Tuple[int, Dict[str, str], bytes]:
        timeout = self.request_timeout
        if deadline is not None:
            timeout = min(timeout, max(0.0, deadline.remaining()))
        try:
            return await _http_request(
                worker.host, worker.port, method, path, body,
                timeout=timeout, extra_headers=extra_headers)
        except (OSError, ConnectionError, ValueError,
                asyncio.IncompleteReadError) as error:
            self.proxy_errors += 1
            raise WorkerFailure(
                worker.slot,
                f"worker {worker.slot} failed mid-request: "
                f"{type(error).__name__}: {error}")
        except (asyncio.TimeoutError, TimeoutError):
            self.timeouts_504 += 1
            if deadline is not None and deadline.expired:
                raise _deadline_error(deadline)
            raise ServeError(
                504, f"worker {worker.slot} timed out after "
                     f"{timeout:.0f}s")

    # -- endpoints -----------------------------------------------------
    async def synthesize(self, raw: bytes, body: Dict[str, Any],
                         deadline: Optional[Deadline] = None
                         ) -> Tuple[int, bytes, str, Dict[str, str]]:
        """Route one request to its owning worker; the original bytes
        are forwarded untouched so worker-side fingerprints (and the
        response body) match a direct single-process run exactly.

        A mid-request worker connect/read failure is retried **once**
        against the next live ring slot (``/synthesize`` is idempotent
        and content-addressed, so a replay is safe and -- when the
        first worker got far enough to publish -- served warm from the
        shared store).  The remaining deadline budget rides along as
        ``X-Repro-Deadline-Ms``, recomputed per attempt, so queueing
        and the failed first attempt shrink what the retry may spend.

        Returns ``(status, body, source, response headers)``; a rescued
        request (success after a failover retry) carries its attempt
        count in the ``X-Repro-Attempts`` header so clients and the
        load generator can tell rescues from first-try successes.

        When the request is traced, each attempt gets its own ``proxy``
        child span (failed attempts finish with status "error"), and
        the trace id plus the attempt span id ride the trace headers so
        the worker's spans nest under the right attempt."""
        key = routing_key(body, self.defaults)
        parent = current_span() or NULL_SPAN
        attempted: Set[int] = set()
        last_failure: Optional[WorkerFailure] = None
        for attempt in range(2):
            if deadline is not None and deadline.expired:
                self.timeouts_504 += 1
                raise _deadline_error(deadline)
            slot = self.ring.owner(key, self._live_slots() - attempted)
            if slot is None:
                if last_failure is not None:
                    raise last_failure
                self.unrouted += 1
                raise ServeError(
                    503, "no live worker owns this shard (all workers "
                         "down or restarting); retry shortly")
            worker = self.workers[slot]
            self.routed_by_worker[slot] += 1
            extra: Dict[str, str] = {}
            if deadline is not None:
                extra["X-Repro-Deadline-Ms"] = str(deadline.remaining_ms())
            attempt_span = parent.child("proxy").set(
                attempt=attempt, worker=slot)
            if parent:
                extra[TRACE_HEADER] = parent.trace_id
                extra[PARENT_HEADER] = attempt_span.span_id
            try:
                status, headers, payload = await self._proxy(
                    worker, "POST", "/synthesize", raw,
                    deadline=deadline, extra_headers=extra or None)
            except WorkerFailure as failure:
                attempt_span.finish("error")
                attempted.add(slot)
                last_failure = failure
                if attempt == 0:
                    self.retries += 1
                    continue
                raise
            except BaseException:
                attempt_span.finish("error")
                raise
            source = headers.get("x-repro-source", "")
            attempt_span.set(source=source).finish(status)
            response_headers: Dict[str, str] = {}
            if attempt > 0:
                self.failovers += 1
                response_headers[ATTEMPTS_HEADER] = str(attempt + 1)
                parent.set(rescued=True)
            parent.set(worker=slot, attempts=attempt + 1)
            return status, payload, source, response_headers
        raise last_failure  # unreachable; keeps the checker honest

    async def batch(self, body: Dict[str, Any],
                    deadline: Optional[Deadline] = None) -> bytes:
        """Split a batch per item across owning workers, concurrently,
        and reassemble the exact bytes one worker's ``/batch`` would
        have produced (``{"jobs": [...]}``, in request order)."""
        requests = body.get("requests")
        if not isinstance(requests, list) or not requests:
            raise ServeError(400, "'requests' must be a non-empty list")
        base = dict(body)
        base.pop("requests", None)

        async def one(index: int, item: Any) -> Tuple[int, bytes]:
            if not isinstance(item, dict):
                raise ServeError(400, f"requests[{index}] must be an object")
            # Item fields override batch-level fields -- the same merge
            # a worker's own /batch applies.
            merged = {**base, **item}
            raw = json.dumps(merged, sort_keys=True).encode("utf-8")
            status, payload, _, _ = await self.synthesize(
                raw, merged, deadline=deadline)
            return status, payload

        results = await asyncio.gather(
            *(one(i, item) for i, item in enumerate(requests)),
            return_exceptions=True)
        # A single worker aborts a batch at the first failing request;
        # report the lowest-index failure to match those semantics.
        for result in results:
            if isinstance(result, BaseException):
                raise result
            status, payload = result
            if status != 200:
                try:
                    message = json.loads(payload).get("error", "")
                except ValueError:
                    message = payload.decode("utf-8", errors="replace")
                raise ServeError(status, message or "worker error")
        jobs = [json.loads(payload) for _, payload in results]
        return json.dumps({"jobs": jobs}, indent=2,
                          sort_keys=True).encode("utf-8")

    # -- introspection -------------------------------------------------
    def fleet_stats(self) -> Dict[str, Any]:
        """The router's own counters (the ``fleet`` metrics section)."""
        return {
            "workers": [
                {
                    "slot": worker.slot,
                    "port": worker.port,
                    "ready": worker.ready,
                    "restarts": worker.restarts,
                    "routed": self.routed_by_worker[worker.slot],
                }
                for worker in self.workers
            ],
            "worker_restarts": self.worker_restarts,
            "routed_total": sum(self.routed_by_worker),
            "unrouted_503": self.unrouted,
            "proxy_errors_502": self.proxy_errors,
            "retries": self.retries,
            "failovers": self.failovers,
            "timeouts_504": self.timeouts_504,
            "chaos_kills": self.chaos_kills,
            "queue_depth": self.metrics.in_flight,
            "ring": {"slots": self.ring.slots,
                     "vnodes": self.ring.vnodes},
        }

    async def healthz(self) -> Dict[str, Any]:
        """Fleet liveness, *including* worker-reported degradation: a
        fleet whose workers are serving engine-only (store breakers
        open) is alive but ``degraded``, and operators should see that
        here rather than by polling every worker themselves."""
        live = self._live_slots()

        async def probe(worker: WorkerHandle) -> Optional[Dict[str, Any]]:
            if not worker.ready:
                return None
            # Straight to _http_request (not _proxy): a health probe
            # failing must not count as a mid-request proxy error.
            try:
                status, _, payload = await _http_request(
                    worker.host, worker.port, "GET", "/healthz",
                    timeout=min(5.0, self.request_timeout))
                if status != 200:
                    return None
                return json.loads(payload)
            except (OSError, ConnectionError, ValueError,
                    asyncio.IncompleteReadError,
                    asyncio.TimeoutError, TimeoutError):
                return None

        payloads = await asyncio.gather(
            *(probe(worker) for worker in self.workers))
        degraded = not live or any(
            p is not None and p.get("degraded") for p in payloads)
        return {
            "status": "degraded" if degraded else "ok",
            "degraded": degraded,
            "uptime_seconds": self.metrics.uptime_seconds,
            "started_at": self.metrics.started_at,
            "workers_live": len(live),
            "workers_total": len(self.workers),
            "workers": [
                {"slot": worker.slot, "port": worker.port,
                 "ready": worker.ready, "restarts": worker.restarts,
                 "degraded": bool(p and p.get("degraded"))}
                for worker, p in zip(self.workers, payloads)
            ],
        }

    async def metrics_payload(self) -> Dict[str, Any]:
        live = [worker for worker in self.workers if worker.ready]

        async def fetch(worker: WorkerHandle):
            try:
                status, _, payload = await self._proxy(
                    worker, "GET", "/metrics")
                if status != 200:
                    return None
                return json.loads(payload)
            except (ServeError, ValueError):
                return None

        payloads = [p for p in await asyncio.gather(
            *(fetch(worker) for worker in live)) if p is not None]
        aggregated = aggregate_metrics(payloads)
        # Router-*originated* serving errors (503 with no live owner,
        # 504 on a router-side deadline, 502 mid-proxy) never reach a
        # worker's counters; fold them in so fleet-level availability
        # sees every bad event a client saw.  Proxied worker errors
        # are already in the workers' own traffic counts.
        traffic = aggregated.setdefault("traffic_by_status", {})
        for status, count in (("502", self.proxy_errors),
                              ("503", self.unrouted),
                              ("504", self.timeouts_504)):
            if count:
                traffic[status] = traffic.get(status, 0) + count
        aggregated["fleet"] = self.fleet_stats()
        return aggregated

    async def debug_traces(self, **filters: Any) -> List[Dict[str, Any]]:
        """Fleet-merged traces: the router's own spans plus every live
        worker's ring, regrouped by trace id -- a propagated trace id
        stitches the halves back into one tree."""
        spans: List[Dict[str, Any]] = list(self.tracer.spans())

        async def fetch(worker: WorkerHandle) -> List[Dict[str, Any]]:
            try:
                status, _, payload = await self._proxy(
                    worker, "GET",
                    f"/debug/traces?limit={self.trace_ring_size}")
                if status != 200:
                    return []
                traces = json.loads(payload).get("traces", [])
                return [span for trace in traces
                        for span in trace.get("spans", [])]
            except (ServeError, ValueError):
                return []

        live = [worker for worker in self.workers if worker.ready]
        for worker_spans in await asyncio.gather(
                *(fetch(worker) for worker in live)):
            spans.extend(worker_spans)
        return filter_traces(group_spans(spans), **filters)

    # -- lifecycle -----------------------------------------------------
    async def stop_workers(self, drain_timeout: float = 10.0) -> None:
        """SIGTERM every worker (each drains itself and closes its
        stores), bounded-wait, then SIGKILL stragglers."""
        self._closing = True
        if self._chaos_task is not None:
            self._chaos_task.cancel()
            self._chaos_task = None
        for task in self._supervisors:
            task.cancel()
        if self._supervisors:
            await asyncio.gather(*self._supervisors,
                                 return_exceptions=True)
        self._supervisors = []
        for worker in self.workers:
            worker.ready = False
            worker.terminate()
        waits = [worker.proc.wait() for worker in self.workers
                 if worker.proc is not None]
        if waits:
            try:
                await asyncio.wait_for(
                    asyncio.gather(*waits),
                    timeout=max(1.0, drain_timeout + 5.0))
            except (asyncio.TimeoutError, TimeoutError):
                for worker in self.workers:
                    worker.kill()
        self.access_log.close()

    def close(self, close_stores: bool = False) -> None:
        """Sync best-effort teardown (the embedded/abnormal path; the
        graceful path is :meth:`stop_workers`).  Workers own their
        stores, so ``close_stores`` has nothing extra to do here."""
        self._closing = True
        if self._chaos_task is not None:
            self._chaos_task.cancel()
            self._chaos_task = None
        for task in self._supervisors:
            task.cancel()
        for worker in self.workers:
            worker.terminate()
        self.access_log.close()


class FleetRouter(ReproServer):
    """The HTTP front door: :class:`~repro.serve.server.ReproServer`'s
    request plumbing with dispatch, lifecycle, and shutdown rebound to
    a :class:`FleetService`.  Duck-types ReproServer closely enough
    that :class:`~repro.serve.server.ServerThread` embeds it
    unchanged."""

    def __init__(self, fleet: FleetService, host: str = "127.0.0.1",
                 port: int = DEFAULT_PORT,
                 history: bool = False,
                 history_interval: float = 5.0,
                 history_retention: float = 3600.0,
                 slo: Optional[List[Any]] = None,
                 slo_file: Optional[str] = None) -> None:
        # Deliberately NOT calling ReproServer.__init__: the fleet has
        # no local SynthesisService.  self.service is the FleetService
        # -- _handle only touches service.metrics, which it provides.
        self.host = host
        self.port = port
        self.fleet = fleet
        self.service = fleet
        self._server: Optional[asyncio.AbstractServer] = None
        # History samples the *aggregated* payload, so fleet-wide and
        # per-worker series coexist in one ring; SLOs imply history.
        self.history: Optional[MetricsHistory] = None
        self.slo_engine: Optional[SLOEngine] = None
        self._sampler: Optional[HistorySampler] = None
        objectives = _resolve_objectives(slo, slo_file)
        if history or objectives:
            self.history = MetricsHistory(interval=history_interval,
                                          retention=history_retention)
            if objectives:
                self.slo_engine = SLOEngine(
                    self.history, objectives, tracer=fleet.tracer)
            self._sampler = HistorySampler(
                self.history, fleet.metrics_payload,
                slo_engine=self.slo_engine)

    async def _dispatch(self, method: str, path: str, query: str,
                        body: bytes, headers: Dict[str, str]
                        ) -> Tuple[int, bytes, str, Dict[str, str]]:
        fleet = self.fleet
        if path == "/healthz":
            if method != "GET":
                raise ServeError(405, "use GET /healthz")
            health = await fleet.healthz()
            if self.slo_engine is not None:
                health["slo"] = self.slo_engine.overall_state()
            return 200, json.dumps(health, indent=2,
                                   sort_keys=True).encode("utf-8"), "", {}
        if path == "/metrics":
            if method != "GET":
                raise ServeError(405, "use GET /metrics")
            payload = await fleet.metrics_payload()
            if self.slo_engine is not None:
                payload["slo"] = self.slo_engine.metrics_section()
            if _query_format(query) == "prometheus":
                return (200, prometheus_text(payload).encode("utf-8"), "",
                        {"Content-Type": PROM_CONTENT_TYPE})
            return 200, json.dumps(payload, indent=2,
                                   sort_keys=True).encode("utf-8"), "", {}
        if path == "/metrics/history":
            if method != "GET":
                raise ServeError(405, "use GET /metrics/history")
            return 200, _history_body(self.history, query), "", {}
        if path == "/slo":
            if method != "GET":
                raise ServeError(405, "use GET /slo")
            return 200, _slo_body(self.slo_engine), "", {}
        if path == "/debug/dashboard":
            if method != "GET":
                raise ServeError(405, "use GET /debug/dashboard")
            dash_body, dash_headers = _dashboard_body()
            return 200, dash_body, "", dash_headers
        if path == "/debug/traces":
            if method != "GET":
                raise ServeError(405, "use GET /debug/traces")
            traces = await fleet.debug_traces(**_trace_filters(query))
            return 200, json.dumps({"traces": traces}, indent=2,
                                   sort_keys=True).encode("utf-8"), "", {}
        if path == "/synthesize":
            if method != "POST":
                raise ServeError(405, "use POST /synthesize")
            status, payload, source, extra = await fleet.synthesize(
                body, self._parse_json(body),
                deadline=self._request_deadline(headers))
            return status, payload, source, extra
        if path == "/batch":
            if method != "POST":
                raise ServeError(405, "use POST /batch")
            return 200, await fleet.batch(
                self._parse_json(body),
                deadline=self._request_deadline(headers)), "", {}
        raise ServeError(
            404, f"unknown path {path!r}; endpoints: POST /synthesize, "
                 f"POST /batch, GET /healthz, GET /metrics, "
                 f"GET /metrics/history, GET /slo, GET /debug/traces, "
                 f"GET /debug/dashboard")

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        await self.fleet.start()
        try:
            await super().start()
        except BaseException:
            await self.fleet.stop_workers(drain_timeout=1.0)
            raise

    async def stop(self) -> None:
        if self._sampler is not None:
            self._sampler.stop()
        if self._server is not None:
            self._server.close()
            try:
                await asyncio.wait_for(self._server.wait_closed(),
                                       timeout=1.0)
            except (asyncio.TimeoutError, TimeoutError):
                pass
        await self.fleet.stop_workers(
            drain_timeout=self.fleet.worker_drain_timeout)

    async def shutdown(self, drain_timeout: float = 10.0,
                       close_stores: bool = True) -> int:
        """Graceful stop: close the listener, drain the router's
        in-flight requests (bounded), then SIGTERM the workers so each
        runs its own drain and closes its stores.  Returns the requests
        still in flight when the drain window closed."""
        loop = asyncio.get_running_loop()
        if self._sampler is not None:
            self._sampler.stop()
        if self._server is not None:
            self._server.close()
        deadline = loop.time() + max(0.0, drain_timeout)
        while (self.fleet.metrics.in_flight > 0
               and loop.time() < deadline):
            await asyncio.sleep(0.05)
        remaining = self.fleet.metrics.in_flight
        if self._server is not None:
            try:
                await asyncio.wait_for(self._server.wait_closed(),
                                       timeout=1.0)
            except (asyncio.TimeoutError, TimeoutError):
                pass
        await self.fleet.stop_workers(drain_timeout=drain_timeout)
        return remaining

    def run_in_thread(self) -> ServerThread:
        handle = ServerThread(self)
        handle.start()
        return handle


async def run_fleet(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    workers: int = 2,
    store: Any = "default",
    node_store: Any = "auto",
    defaults: Optional[Dict[str, Any]] = None,
    engine_workers: int = 2,
    ready_message: bool = True,
    drain_timeout: float = 10.0,
    request_timeout: Optional[float] = None,
    breaker_threshold: int = BREAKER_THRESHOLD,
    breaker_reset: float = BREAKER_RESET,
    chaos: Optional[str] = None,
    trace_sample: float = 0.0,
    trace_ring: int = 256,
    trace_export: Optional[str] = None,
    access_log: Any = False,
    access_log_max_mb: float = 64.0,
    history: bool = False,
    history_interval: float = 5.0,
    history_retention: float = 3600.0,
    slo: Optional[List[Any]] = None,
    slo_file: Optional[str] = None,
) -> None:
    """Run the fleet until cancelled or signalled (the ``repro fleet``
    entry).  SIGTERM/SIGINT drain the router, then the workers."""
    fleet = FleetService(
        workers=workers, store=store, node_store=node_store,
        defaults=defaults, engine_workers=engine_workers,
        worker_host=host if host != "0.0.0.0" else "127.0.0.1",
        worker_drain_timeout=drain_timeout,
        request_deadline=request_timeout,
        breaker_threshold=breaker_threshold,
        breaker_reset=breaker_reset,
        chaos=chaos,
        trace_sample=trace_sample, trace_ring=trace_ring,
        trace_export=trace_export, access_log=access_log,
        access_log_max_mb=access_log_max_mb,
    )
    router = FleetRouter(fleet, host=host, port=port,
                         history=history,
                         history_interval=history_interval,
                         history_retention=history_retention,
                         slo=slo, slo_file=slo_file)
    await router.start()
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    # Handlers go in *before* the ready line: the ready line is the
    # signal that it is safe to interact with (and signal) the router.
    installed = install_signal_handlers(loop, stop.set)
    if ready_message:
        ports = ", ".join(str(worker.port) for worker in fleet.workers)
        print(f"repro fleet: listening on http://{router.host}:"
              f"{router.port} with {workers} worker(s) "
              f"(worker ports: {ports}; store: {store})", flush=True)
    serve_task = asyncio.ensure_future(router.serve_forever())
    stop_task = asyncio.ensure_future(stop.wait())
    try:
        done, _ = await asyncio.wait(
            {serve_task, stop_task},
            return_when=asyncio.FIRST_COMPLETED)
        if serve_task in done:
            serve_task.result()  # propagate listener failures
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)
        for task in (serve_task, stop_task):
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        in_flight = fleet.metrics.in_flight
        if ready_message and in_flight:
            print(f"repro fleet: draining {in_flight} in-flight "
                  f"request(s) (up to {drain_timeout:.0f}s)", flush=True)
        remaining = await router.shutdown(drain_timeout)
        if ready_message:
            state = ("drained cleanly" if remaining == 0 else
                     f"drain timed out with {remaining} request(s) "
                     f"in flight")
            print(f"repro fleet: {state}; workers stopped", flush=True)
