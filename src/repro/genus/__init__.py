"""GENUS -- a parameterizable library of generic RTL components.

GENUS organizes generic components as a hierarchy (paper section 4):

    *types*  ->  *generators*  ->  *components*  ->  *instances*

- a :class:`~repro.genus.types.TypeClass` describes abstract
  functionality (combinational / sequential / interface / miscellaneous);
- a :class:`~repro.genus.generators.Generator` produces a family of
  components from a parameter list (LEGEND descriptions build these);
- a :class:`~repro.genus.components.Component` is one generated,
  fully-parameterized design object with a functional spec, a port list,
  and a simulatable behavioral model;
- an :class:`~repro.genus.components.Instance` is a "carbon copy" of a
  component carrying only a unique name and its connectivity.

The standard library (paper Table 1) is defined in LEGEND text in
:mod:`repro.legend.stdlib_source` and materialized by
:func:`repro.genus.standard.standard_library`.
"""

from repro.genus.components import Component, Instance
from repro.genus.generators import Generator, GeneratorError
from repro.genus.library import GenusLibrary
from repro.genus.standard import standard_library
from repro.genus.types import TypeClass, type_class_of

__all__ = [
    "Component",
    "Generator",
    "GeneratorError",
    "GenusLibrary",
    "Instance",
    "TypeClass",
    "standard_library",
    "type_class_of",
]
