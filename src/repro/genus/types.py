"""GENUS type classes.

The type class sits at the top of the GENUS hierarchy and describes the
abstract functionality of elements: *combinational*, *sequential*,
*interface*, and *miscellaneous* (paper section 4 and Table 1).
"""

from __future__ import annotations

import enum

from repro.core.specs import INTERFACE_CTYPES, MISC_CTYPES, SEQUENTIAL_CTYPES


class TypeClass(enum.Enum):
    """Abstract functionality class of a GENUS element."""

    COMBINATIONAL = "combinational"
    SEQUENTIAL = "sequential"
    INTERFACE = "interface"
    MISCELLANEOUS = "miscellaneous"


def type_class_of(ctype: str) -> TypeClass:
    """Type class of a component type, per Table 1 of the paper."""
    if ctype in SEQUENTIAL_CTYPES:
        return TypeClass.SEQUENTIAL
    if ctype in INTERFACE_CTYPES:
        return TypeClass.INTERFACE
    if ctype in MISC_CTYPES:
        return TypeClass.MISCELLANEOUS
    return TypeClass.COMBINATIONAL


#: Table 1 of the paper: typical LEGEND/GENUS generic components,
#: by type class, with the component type implementing each entry.
TABLE_1 = {
    TypeClass.COMBINATIONAL: (
        ("Boolean Gates", "GATE"),
        ("Mux", "MUX"),
        ("Selector", "SELECTOR"),
        ("Decoder", "DECODER"),
        ("Encoder", "ENCODER"),
        ("Comparator", "COMPARATOR"),
        ("LU", "ALU"),
        ("ALU", "ALU"),
        ("Shifter", "SHIFTER"),
        ("Barrel Shifter", "BARREL_SHIFTER"),
        ("Multiplier", "MULT"),
        ("Divider", "DIV"),
        ("Adder/Subtractor", "ADDSUB"),
    ),
    TypeClass.SEQUENTIAL: (
        ("Register", "REG"),
        ("Register File", "REGFILE"),
        ("Counter", "COUNTER"),
        ("Stack/FIFO", "STACK"),
        ("Memory", "MEMORY"),
    ),
    TypeClass.INTERFACE: (
        ("Port", "PORT"),
        ("Buffer", "BUFFER"),
        ("Clock Driver", "CLOCK_DRIVER"),
        ("Schmidt Trigger", "SCHMITT"),
        ("Tristate", "TRISTATE"),
    ),
    TypeClass.MISCELLANEOUS: (
        ("Bus", "BUS"),
        ("Delay", "DELAY"),
        ("Switchbox Concat", "CONCAT"),
        ("Switchbox Extract", "EXTRACT"),
        ("Clock Generator", "CLOCK_GEN"),
        ("Wired-or", "WIRED_OR"),
    ),
}
