"""The GENUS library container.

"A GENUS library is composed as a hierarchy of types, generators,
components and instances" (paper section 4).  This module provides that
container: generators are registered by name; generated components are
cached by their resolved parameters (generation is deterministic); and
instances receive unique names.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.specs import ComponentSpec
from repro.genus.components import Component, Instance
from repro.genus.generators import Generator, GeneratorError
from repro.genus.types import TypeClass


class GenusLibrary:
    """A named collection of GENUS component generators."""

    def __init__(self, name: str = "GENUS") -> None:
        self.name = name
        self._generators: Dict[str, Generator] = {}
        self._components: Dict[Tuple[str, Tuple], Component] = {}
        self._instance_counter = 0

    # ------------------------------------------------------------------
    # generator management
    # ------------------------------------------------------------------
    def add_generator(self, generator: Generator, replace: bool = False) -> None:
        """Register a generator.  Re-registering without ``replace`` is
        an error; ``replace=True`` supports LEGEND's customization of
        existing libraries."""
        key = generator.name.upper()
        if key in self._generators and not replace:
            raise GeneratorError(f"generator {generator.name!r} already registered")
        self._generators[key] = generator

    def generator(self, name: str) -> Generator:
        try:
            return self._generators[name.upper()]
        except KeyError:
            raise GeneratorError(f"no generator named {name!r} in library {self.name!r}")

    def generator_names(self) -> List[str]:
        return sorted(self._generators)

    def declared_generator_names(self) -> List[str]:
        """Generator names in registration (declaration) order."""
        return list(self._generators)

    def generators_by_class(self, type_class: TypeClass) -> List[Generator]:
        return sorted(
            (g for g in self._generators.values() if g.type_class is type_class),
            key=lambda g: g.name,
        )

    # ------------------------------------------------------------------
    # components and instances
    # ------------------------------------------------------------------
    def generate(self, generator_name: str, **params: Any) -> Component:
        """Generate (or fetch the cached) component for a parameter set."""
        generator = self.generator(generator_name)
        component = generator.generate(**params)
        key = (generator.name.upper(), tuple(sorted(component.params.items())))
        cached = self._components.get(key)
        if cached is not None:
            return cached
        self._components[key] = component
        return component

    def instance(self, component: Component, name: Optional[str] = None) -> Instance:
        """Create a uniquely-named instance of a component."""
        if name is None:
            self._instance_counter += 1
            name = f"{component.name}_i{self._instance_counter}"
        return component.instantiate(name)

    def components(self) -> List[Component]:
        """All components generated so far, in deterministic order."""
        return [self._components[k] for k in sorted(self._components)]

    def __len__(self) -> int:
        return len(self._generators)

    def __contains__(self, name: str) -> bool:
        return name.upper() in self._generators

    def __repr__(self) -> str:
        return f"GenusLibrary({self.name!r}, generators={len(self._generators)})"
