"""The standard GENUS library (paper Table 1), materialized from LEGEND.

The library is built by parsing :data:`repro.legend.stdlib_source.
STANDARD_LIBRARY_SOURCE`, which mirrors the paper's flow (LEGEND
description -> GENUS library).  The result is cached: the standard
library is immutable by convention; use
:func:`repro.legend.builder.extend_library` on a fresh copy to
customize.
"""

from __future__ import annotations

from typing import Optional

from repro.genus.library import GenusLibrary

_CACHE: Optional[GenusLibrary] = None


def standard_library(fresh: bool = False) -> GenusLibrary:
    """The standard GENUS library.

    By default a cached shared instance is returned; ``fresh=True``
    parses the LEGEND source again and returns an independent library
    (use this before customizing generators).
    """
    global _CACHE
    from repro.legend.builder import build_library
    from repro.legend.stdlib_source import STANDARD_LIBRARY_SOURCE

    if fresh:
        return build_library(STANDARD_LIBRARY_SOURCE, name="GENUS-standard")
    if _CACHE is None:
        _CACHE = build_library(STANDARD_LIBRARY_SOURCE, name="GENUS-standard")
    return _CACHE
