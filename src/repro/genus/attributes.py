"""Parameter descriptors for GENUS component generators.

A generator is "characterized by a unique name and a list of
parameterizable attributes" (paper section 4).  Parameters follow the
``GC_*`` naming convention of the LEGEND examples: some are obligatory,
others carry defaults.  Each parameter has a *kind* that controls
validation and its mapping onto :class:`~repro.core.specs.ComponentSpec`
attributes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional, Tuple


class ParamError(ValueError):
    """A generator was invoked with missing or ill-typed parameters."""


#: Parameter kinds, matching the single-letter codes used in LEGEND
#: parameter annotations such as ``GC_INPUT_WIDTH (2w)``.
PARAM_KINDS = {
    "w": "width",       # positive integer bit-width
    "n": "count",       # positive integer count
    "f": "functions",   # tuple of operation names
    "s": "style",       # style name drawn from the generator's STYLES
    "v": "value",       # arbitrary integer value
    "b": "flag",        # boolean
    "c": "name",        # free-form string (e.g. compiler name)
}


@dataclass(frozen=True)
class Parameter:
    """One parameterizable attribute of a generator."""

    name: str
    kind: str
    index: int = 0
    required: bool = False
    default: Any = None

    def __post_init__(self) -> None:
        if self.kind not in PARAM_KINDS:
            raise ParamError(f"parameter {self.name!r}: unknown kind {self.kind!r}")

    def validate(self, value: Any, styles: Tuple[str, ...] = ()) -> Any:
        """Check and normalize one supplied value."""
        if self.kind in ("w", "n"):
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise ParamError(f"{self.name} expects a positive integer, got {value!r}")
            return value
        if self.kind == "f":
            if isinstance(value, str):
                value = (value,)
            ops = tuple(str(v).upper() for v in value)
            if not ops:
                raise ParamError(f"{self.name} expects a non-empty operation list")
            return ops
        if self.kind == "s":
            style = str(value).upper()
            if styles and style not in styles:
                raise ParamError(
                    f"{self.name}: style {style!r} not one of {list(styles)}"
                )
            return style
        if self.kind == "v":
            if not isinstance(value, int) or isinstance(value, bool):
                raise ParamError(f"{self.name} expects an integer, got {value!r}")
            return value
        if self.kind == "b":
            return bool(value)
        return str(value)


def resolve_params(
    declared: Iterable[Parameter],
    supplied: Dict[str, Any],
    styles: Tuple[str, ...] = (),
) -> Dict[str, Any]:
    """Merge supplied values with declared defaults.

    Raises :class:`ParamError` on unknown names, missing obligatory
    parameters, or values that fail kind validation.
    """
    declared = list(declared)
    by_name = {p.name: p for p in declared}
    unknown = set(supplied) - set(by_name)
    if unknown:
        raise ParamError(f"unknown parameter(s): {sorted(unknown)}")
    resolved: Dict[str, Any] = {}
    for param in declared:
        if param.name in supplied:
            resolved[param.name] = param.validate(supplied[param.name], styles)
        elif param.default is not None:
            resolved[param.name] = param.validate(param.default, styles)
        elif param.required:
            raise ParamError(f"missing obligatory parameter {param.name!r}")
    return resolved
