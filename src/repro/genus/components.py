"""GENUS components and instances.

A :class:`Component` is one fully-parameterized design object produced
by a generator.  An :class:`Instance` is a "carbon copy" of a component
with a unique name; since an instance inherits every attribute from its
parent component, only its connectivity is stored (paper section 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.core.specs import ComponentSpec, port_signature
from repro.netlist.nets import Endpoint
from repro.netlist.netlist import ModuleInst
from repro.netlist.ports import Port


@dataclass
class Component:
    """A generated, fully-parameterized generic component."""

    name: str
    generator_name: str
    spec: ComponentSpec
    params: Dict[str, Any] = field(default_factory=dict)
    vhdl_model: str = ""

    @property
    def ports(self) -> Tuple[Port, ...]:
        """Full port signature, derived from the functional spec."""
        return port_signature(self.spec)

    @property
    def is_sequential(self) -> bool:
        return self.spec.is_sequential

    # ------------------------------------------------------------------
    # Behavioral model (the paper's "simulatable VHDL behavioral models";
    # here executed directly in Python, and emitted as VHDL by
    # repro.vhdl.behavioral).
    # ------------------------------------------------------------------
    def behavior(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        """Evaluate the component's combinational behavioral model."""
        from repro.genus import behavior

        return behavior.combinational_eval(self.spec, inputs)

    def reset_state(self) -> Dict[str, Any]:
        """Initial state for sequential components."""
        from repro.genus import behavior

        return behavior.sequential_reset(self.spec)

    def step(
        self, inputs: Mapping[str, int], state: Dict[str, Any]
    ) -> Tuple[Dict[str, int], Dict[str, Any]]:
        """One clock cycle: returns (outputs before the edge, next state)."""
        from repro.genus import behavior

        outputs = behavior.sequential_outputs(self.spec, inputs, state)
        return outputs, behavior.sequential_next(self.spec, inputs, state)

    def instantiate(self, instance_name: str) -> "Instance":
        """Create a uniquely-named carbon copy of this component."""
        return Instance(name=instance_name, component=self)

    def __str__(self) -> str:
        return f"{self.name} :: {self.spec}"


@dataclass
class Instance:
    """A named instance of a component; stores only connectivity."""

    name: str
    component: Component
    connections: Dict[str, Endpoint] = field(default_factory=dict)

    @property
    def spec(self) -> ComponentSpec:
        return self.component.spec

    @property
    def ports(self) -> Tuple[Port, ...]:
        return self.component.ports

    def connect(self, pin: str, endpoint: Endpoint) -> None:
        """Attach an endpoint to one of the instance's pins."""
        names = {p.name for p in self.ports}
        if pin not in names:
            raise KeyError(f"instance {self.name!r} has no pin {pin!r}")
        self.connections[pin] = endpoint

    def to_module_inst(self) -> ModuleInst:
        """Convert to the netlist substrate's module-instance form."""
        inst = ModuleInst(self.name, self.spec, self.ports)
        for pin, endpoint in self.connections.items():
            inst.connect(pin, endpoint)
        return inst
