"""Generic behavioral semantics for every GENUS component type.

This module is the single source of truth for what components *do*.  It
is used three ways, mirroring the paper's use of simulatable behavioral
models:

1. GENUS behavioral models (``Component.behavior``) evaluate here;
2. technology-library cells simulate through the same functions (a cell
   *is* a component spec with area/delay attached);
3. the equivalence checker in :mod:`repro.sim` compares a mapped,
   hierarchical DTAS design against these semantics.

All values are plain unsigned integers masked to their port widths.

Arithmetic conventions (chosen so generic semantics are realizable by
adder-based datapaths, see tests/test_behavior.py):

- ``SUB`` computes ``a + ~b + ci`` (two's complement); when the spec has
  no carry-in pin, ``ci`` defaults to 1 so ``SUB`` is exact ``a - b``.
- ``INC`` computes ``a + 1 + ci`` and ``DEC`` computes ``a - 1 + ci``
  (carry defaults to 0 without a CI pin).
- Comparison operations place their 1-bit result in bit 0 of the output.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.core.specs import ComponentSpec, port_signature, sel_width

State = Dict[str, object]
Values = Dict[str, int]


def mask(width: int) -> int:
    return (1 << width) - 1


def _bit(value: int, index: int) -> int:
    return (value >> index) & 1


# ---------------------------------------------------------------------------
# Operation semantics (shared by ALU, ADD/SUB, comparators, shifters)
# ---------------------------------------------------------------------------

def default_carry_in(op: str) -> int:
    """Carry-in assumed when a spec has no CI pin."""
    return 1 if op == "SUB" else 0


def alu_op(op: str, a: int, b: int, ci: int, width: int) -> Tuple[int, int]:
    """Evaluate one ALU operation; returns ``(result, carry_out)``."""
    m = mask(width)
    a &= m
    b &= m
    if op == "ADD":
        total = a + b + ci
    elif op == "SUB":
        total = a + (~b & m) + ci
    elif op == "INC":
        total = a + 1 + ci
    elif op == "DEC":
        total = a + m + ci  # a - 1 + ci mod 2^w, with real carry
    elif op == "EQ":
        return (1 if a == b else 0), 0
    elif op == "NE":
        return (1 if a != b else 0), 0
    elif op == "LT":
        return (1 if a < b else 0), 0
    elif op == "GT":
        return (1 if a > b else 0), 0
    elif op == "LE":
        return (1 if a <= b else 0), 0
    elif op == "GE":
        return (1 if a >= b else 0), 0
    elif op == "ZEROP":
        return (1 if a == 0 else 0), 0
    elif op == "AND":
        return a & b, 0
    elif op == "OR":
        return a | b, 0
    elif op == "NAND":
        return (~(a & b)) & m, 0
    elif op == "NOR":
        return (~(a | b)) & m, 0
    elif op == "XOR":
        return a ^ b, 0
    elif op == "XNOR":
        return (~(a ^ b)) & m, 0
    elif op == "LNOT":
        return (~a) & m, 0
    elif op == "LIMPL":
        return ((~a) | b) & m, 0
    elif op == "BUF":
        return a, 0
    else:
        raise ValueError(f"unknown ALU operation {op!r}")
    return total & m, (total >> width) & 1


def gate_op(kind: str, inputs: List[int], width: int) -> int:
    """Evaluate a (bitwise) logic gate over its input list."""
    m = mask(width)
    if kind == "NOT":
        return (~inputs[0]) & m
    if kind == "BUF":
        return inputs[0] & m
    acc = inputs[0] & m
    if kind in ("AND", "NAND"):
        for v in inputs[1:]:
            acc &= v
    elif kind in ("OR", "NOR"):
        for v in inputs[1:]:
            acc |= v
    elif kind in ("XOR", "XNOR"):
        for v in inputs[1:]:
            acc ^= v
    else:
        raise ValueError(f"unknown gate kind {kind!r}")
    if kind in ("NAND", "NOR", "XNOR"):
        acc = ~acc
    return acc & m


def shift_op(op: str, a: int, width: int, amount: int = 1, serial_in: int = 0) -> int:
    """Evaluate a shift/rotate of ``amount`` positions."""
    m = mask(width)
    a &= m
    if amount < 0:
        raise ValueError("shift amount must be non-negative")
    if op == "SHL":
        fill = (serial_in * mask(min(amount, width))) if amount else 0
        return ((a << amount) | fill) & m
    if op == "SHR":
        fill = (serial_in * mask(min(amount, width))) << max(width - amount, 0) if amount else 0
        return ((a >> amount) | fill) & m
    if op == "ASR":
        sign = _bit(a, width - 1)
        shifted = a >> amount
        if sign and amount:
            shifted |= mask(min(amount, width)) << max(width - amount, 0)
        return shifted & m
    if op == "ROL":
        amount %= width
        return ((a << amount) | (a >> (width - amount))) & m if amount else a
    if op == "ROR":
        amount %= width
        return ((a >> amount) | (a << (width - amount))) & m if amount else a
    raise ValueError(f"unknown shift operation {op!r}")


# ---------------------------------------------------------------------------
# Combinational component evaluation
# ---------------------------------------------------------------------------

def _eval_gate(spec: ComponentSpec, inputs: Values) -> Values:
    kind = spec.get("kind")
    n = spec.get("n_inputs", 1 if kind in ("NOT", "BUF") else 2)
    values = [inputs[f"I{i}"] for i in range(n)]
    return {"O": gate_op(kind, values, spec.width)}


def _eval_mux(spec: ComponentSpec, inputs: Values) -> Values:
    n = spec.get("n_inputs", 2)
    sel = inputs["S"] & mask(sel_width(n))
    if sel >= n:
        return {"O": 0}
    return {"O": inputs[f"I{sel}"] & mask(spec.width)}


def _eval_decoder(spec: ComponentSpec, inputs: Values) -> Values:
    n_outputs = spec.get("n_outputs", 1 << spec.width)
    enable = inputs.get("EN", 1) if spec.get("enable", False) else 1
    index = inputs["I"] & mask(spec.width)
    if not enable or index >= n_outputs:
        return {"O": 0}
    return {"O": 1 << index}


def _eval_encoder(spec: ComponentSpec, inputs: Values) -> Values:
    n_inputs = spec.get("n_inputs", 1 << spec.width)
    value = inputs["I"] & mask(n_inputs)
    out: Values = {}
    if value == 0:
        out["O"] = 0
        if spec.get("valid", False):
            out["V"] = 0
        return out
    out["O"] = value.bit_length() - 1  # highest-priority (highest index)
    if spec.get("valid", False):
        out["V"] = 1
    return out


def _arith_ci(spec: ComponentSpec, inputs: Values, op: str) -> int:
    if spec.get("carry_in", False):
        return inputs.get("CI", 0) & 1
    return default_carry_in(op)


def _eval_add_sub(spec: ComponentSpec, inputs: Values, op: str) -> Values:
    ci = _arith_ci(spec, inputs, op)
    result, carry = alu_op(op, inputs["A"], inputs["B"], ci, spec.width)
    out = {"S": result}
    if spec.get("carry_out", False):
        out["CO"] = carry
    if spec.get("group_carry", False):
        m = mask(spec.width)
        a, b = inputs["A"] & m, (inputs["B"] if op == "ADD" else (~inputs["B"])) & m
        # Group generate/propagate of the (possibly complemented) operands.
        g, p = a & b, a | b
        gen, prop = 0, 1
        for i in range(spec.width):
            gen = _bit(g, i) | (_bit(p, i) & gen)
            prop &= _bit(p, i)
        out["G"] = gen
        out["P"] = prop
    return out


def _eval_addsub(spec: ComponentSpec, inputs: Values) -> Values:
    sub_mode = inputs.get("M", 0) & 1
    op = "SUB" if sub_mode else "ADD"
    if spec.get("carry_in", False):
        ci = inputs.get("CI", 0) & 1
    else:
        ci = default_carry_in(op)
    result, carry = alu_op(op, inputs["A"], inputs["B"], ci, spec.width)
    out = {"S": result}
    if spec.get("carry_out", False):
        out["CO"] = carry
    return out


def _eval_unary_arith(spec: ComponentSpec, inputs: Values, op: str) -> Values:
    ci = _arith_ci(spec, inputs, op)
    result, carry = alu_op(op, inputs["A"], 0, ci, spec.width)
    out = {"S": result}
    if spec.get("carry_out", False):
        out["CO"] = carry
    return out


def _eval_alu(spec: ComponentSpec, inputs: Values) -> Values:
    ops = spec.ops
    sel = inputs["S"] & mask(sel_width(len(ops)))
    out: Values = {}
    if sel >= len(ops):
        out["O"] = 0
        if spec.get("carry_out", False):
            out["CO"] = 0
        return out
    op = ops[sel]
    ci = _arith_ci(spec, inputs, op)
    result, carry = alu_op(op, inputs["A"], inputs["B"], ci, spec.width)
    out["O"] = result
    if spec.get("carry_out", False):
        out["CO"] = carry
    return out


def _eval_comparator(spec: ComponentSpec, inputs: Values) -> Values:
    ops = spec.ops or ("EQ", "LT", "GT")
    m = mask(spec.width)
    a, b = inputs["A"] & m, inputs["B"] & m
    eq, lt, gt = int(a == b), int(a < b), int(a > b)
    zerop = int(a == 0)
    if spec.get("cascaded", False):
        eq_in = inputs.get("EQ_IN", 1) & 1 if "EQ" in ops else 1
        lt_in = inputs.get("LT_IN", 0) & 1 if "LT" in ops else 0
        gt_in = inputs.get("GT_IN", 0) & 1 if "GT" in ops else 0
        zp_in = inputs.get("ZEROP_IN", 1) & 1 if "ZEROP" in ops else 1
        lt = lt | (eq & lt_in)
        gt = gt | (eq & gt_in)
        eq = eq & eq_in
        zerop = zerop & zp_in
    table = {
        "EQ": eq, "NE": 1 - eq, "LT": lt, "GT": gt,
        "LE": lt | eq, "GE": gt | eq, "ZEROP": zerop,
    }
    return {op: table[op] for op in ops}


def _eval_shifter(spec: ComponentSpec, inputs: Values) -> Values:
    ops = spec.ops or ("SHL", "SHR")
    sel = inputs["S"] & mask(sel_width(len(ops)))
    if sel >= len(ops):
        return {"O": 0}
    serial = inputs.get("SI", 0) & 1
    return {"O": shift_op(ops[sel], inputs["A"], spec.width, 1, serial)}


def _eval_barrel(spec: ComponentSpec, inputs: Values) -> Values:
    ops = spec.ops or ("SHL",)
    amount = inputs["SH"] & mask(sel_width(spec.width))
    if len(ops) > 1:
        sel = inputs["S"] & mask(sel_width(len(ops)))
        if sel >= len(ops):
            return {"O": 0}
        op = ops[sel]
    else:
        op = ops[0]
    return {"O": shift_op(op, inputs["A"], spec.width, amount)}


def _eval_mult(spec: ComponentSpec, inputs: Values) -> Values:
    width_b = spec.get("width_b", spec.width)
    a = inputs["A"] & mask(spec.width)
    b = inputs["B"] & mask(width_b)
    return {"P": a * b}


def _eval_div(spec: ComponentSpec, inputs: Values) -> Values:
    m = mask(spec.width)
    a, b = inputs["A"] & m, inputs["B"] & m
    if b == 0:
        return {"Q": m, "R": a}
    return {"Q": a // b, "R": a % b}


def _eval_cla_gen(spec: ComponentSpec, inputs: Values) -> Values:
    groups = spec.get("groups", 4)
    g, p, ci = inputs["G"], inputs["P"], inputs.get("CI", 0) & 1
    carries = 0
    carry = ci
    for i in range(groups):
        carry = _bit(g, i) | (_bit(p, i) & carry)
        carries |= carry << i
    gg = 0
    for i in range(groups):
        gg = _bit(g, i) | (_bit(p, i) & gg)
    gp = 1
    for i in range(groups):
        gp &= _bit(p, i)
    return {"C": carries, "GG": gg, "GP": gp}


def _eval_misc(spec: ComponentSpec, inputs: Values) -> Values:
    ctype = spec.ctype
    m = mask(spec.width)
    if ctype == "CONCAT":
        widths = spec.get("part_widths", (spec.width,))
        acc, offset = 0, 0
        for i, w in enumerate(widths):
            acc |= (inputs[f"I{i}"] & mask(w)) << offset
            offset += w
        return {"O": acc}
    if ctype == "EXTRACT":
        lsb = spec.get("lsb", 0)
        return {"O": (inputs["I"] >> lsb) & m}
    if ctype == "CONST":
        return {"O": spec.get("value", 0) & m}
    if ctype == "WIRED_OR":
        n = spec.get("n_inputs", 2)
        acc = 0
        for i in range(n):
            acc |= inputs[f"I{i}"]
        return {"O": acc & m}
    if ctype == "TRISTATE":
        return {"O": (inputs["I"] & m) if inputs.get("OE", 0) & 1 else 0}
    if ctype == "BUS":
        n = spec.get("n_drivers", 2)
        acc = 0
        for i in range(n):
            if inputs.get(f"OE{i}", 0) & 1:
                acc |= inputs[f"I{i}"]
        return {"O": acc & m}
    if ctype in ("BUFFER", "DELAY", "SCHMITT", "CLOCK_DRIVER"):
        return {"O": inputs["I"] & m}
    raise ValueError(f"no combinational semantics for {ctype!r}")


_COMBINATIONAL: Dict[str, Callable[[ComponentSpec, Values], Values]] = {
    "GATE": _eval_gate,
    "MUX": _eval_mux,
    "SELECTOR": _eval_mux,
    "DECODER": _eval_decoder,
    "ENCODER": _eval_encoder,
    "ADD": lambda s, i: _eval_add_sub(s, i, "ADD"),
    "SUB": lambda s, i: _eval_add_sub(s, i, "SUB"),
    "ADDSUB": _eval_addsub,
    "INC": lambda s, i: _eval_unary_arith(s, i, "INC"),
    "DEC": lambda s, i: _eval_unary_arith(s, i, "DEC"),
    "ALU": _eval_alu,
    "COMPARATOR": _eval_comparator,
    "SHIFTER": _eval_shifter,
    "BARREL_SHIFTER": _eval_barrel,
    "MULT": _eval_mult,
    "DIV": _eval_div,
    "CLA_GEN": _eval_cla_gen,
    "CONCAT": _eval_misc,
    "EXTRACT": _eval_misc,
    "CONST": _eval_misc,
    "WIRED_OR": _eval_misc,
    "TRISTATE": _eval_misc,
    "BUS": _eval_misc,
    "BUFFER": _eval_misc,
    "DELAY": _eval_misc,
    "SCHMITT": _eval_misc,
    "CLOCK_DRIVER": _eval_misc,
}


def is_combinational(spec: ComponentSpec) -> bool:
    """True when the spec has purely combinational semantics here."""
    return spec.ctype in _COMBINATIONAL


def combinational_eval(spec: ComponentSpec, inputs: Mapping[str, int]) -> Values:
    """Evaluate a combinational component.

    ``inputs`` maps input port names to unsigned integers; the result
    maps every output port name to its value, masked to port width.
    """
    handler = _COMBINATIONAL.get(spec.ctype)
    if handler is None:
        raise ValueError(f"{spec.ctype} is not combinational")
    outputs = handler(spec, dict(inputs))
    signature = {p.name: p.width for p in port_signature(spec) if p.is_output}
    return {name: value & mask(signature[name]) for name, value in outputs.items()}


# ---------------------------------------------------------------------------
# Sequential component semantics (two-phase: outputs, then clock edge)
# ---------------------------------------------------------------------------

def sequential_reset(spec: ComponentSpec) -> State:
    """Initial state of a sequential component."""
    ctype = spec.ctype
    if ctype in ("REG", "COUNTER", "SHIFT_REG"):
        return {"q": 0}
    if ctype == "REGFILE":
        return {"words": [0] * spec.get("n_words", 4)}
    if ctype == "MEMORY":
        return {"words": [0] * spec.get("n_words", 16)}
    if ctype in ("STACK", "FIFO"):
        return {"items": []}
    raise ValueError(f"{ctype} is not sequential")


def sequential_outputs(spec: ComponentSpec, inputs: Mapping[str, int], state: State) -> Values:
    """Combinational outputs of a sequential component for the current
    state (sampled before the clock edge)."""
    ctype = spec.ctype
    m = mask(spec.width)
    if ctype == "REG":
        out = {"Q": state["q"] & m}
        if spec.get("complement_out", False):
            out["QN"] = (~state["q"]) & m
        return out
    if ctype == "SHIFT_REG":
        return {"Q": state["q"] & m, "SO": _bit(state["q"], spec.width - 1)}
    if ctype == "COUNTER":
        out = {"O0": state["q"] & m}
        if spec.get("carry_out", False):
            enable = inputs.get("CEN", 1) & 1 if spec.get("enable", False) else 1
            up = inputs.get("CUP", 0) & 1
            down = inputs.get("CDOWN", 0) & 1
            terminal_up = enable and up and state["q"] == m
            terminal_down = enable and down and state["q"] == 0
            out["CO"] = int(bool(terminal_up or terminal_down))
        return out
    if ctype == "REGFILE":
        words = state["words"]
        out = {}
        for i in range(spec.get("n_read", 1)):
            addr = inputs.get(f"RA{i}", 0)
            out[f"RD{i}"] = (words[addr] & m) if addr < len(words) else 0
        return out
    if ctype == "MEMORY":
        words = state["words"]
        addr = inputs.get("ADDR", 0)
        return {"DOUT": (words[addr] & m) if addr < len(words) else 0}
    if ctype in ("STACK", "FIFO"):
        items = state["items"]
        depth = spec.get("depth", 16)
        if not items:
            dout = 0
        elif ctype == "STACK":
            dout = items[-1]
        else:
            dout = items[0]
        return {
            "DOUT": dout & m,
            "EMPTY": int(not items),
            "FULL": int(len(items) >= depth),
        }
    raise ValueError(f"{ctype} is not sequential")


def sequential_next(spec: ComponentSpec, inputs: Mapping[str, int], state: State) -> State:
    """State after one rising clock edge."""
    ctype = spec.ctype
    m = mask(spec.width)
    if ctype == "REG":
        if spec.get("async_reset", False) and inputs.get("ARST", 0) & 1:
            return {"q": 0}
        enable = inputs.get("CEN", 1) & 1 if spec.get("enable", False) else 1
        if enable:
            return {"q": inputs["D"] & m}
        return dict(state)
    if ctype == "SHIFT_REG":
        mode = inputs.get("MODE", 0) & 3
        q = state["q"] & m
        si = inputs.get("SI", 0) & 1
        if mode == 1:
            q = inputs["D"] & m
        elif mode == 2:  # shift left
            q = ((q << 1) | si) & m
        elif mode == 3:  # shift right
            q = (q >> 1) | (si << (spec.width - 1))
        return {"q": q}
    if ctype == "COUNTER":
        if spec.get("async_set", False) and inputs.get("ASET", 0) & 1:
            return {"q": m}
        if spec.get("async_reset", False) and inputs.get("ARESET", 0) & 1:
            return {"q": 0}
        enable = inputs.get("CEN", 1) & 1 if spec.get("enable", False) else 1
        if not enable:
            return dict(state)
        ops = spec.ops or ("LOAD", "COUNT_UP", "COUNT_DOWN")
        q = state["q"] & m
        if "LOAD" in ops and inputs.get("CLOAD", 0) & 1:
            q = inputs.get("I0", 0) & m
        elif "COUNT_UP" in ops and inputs.get("CUP", 0) & 1:
            q = (q + 1) & m
        elif "COUNT_DOWN" in ops and inputs.get("CDOWN", 0) & 1:
            q = (q - 1) & m
        return {"q": q}
    if ctype == "REGFILE":
        words = list(state["words"])
        for i in range(spec.get("n_write", 1)):
            if inputs.get(f"WE{i}", 0) & 1:
                addr = inputs.get(f"WA{i}", 0)
                if addr < len(words):
                    words[addr] = inputs.get(f"WD{i}", 0) & m
        return {"words": words}
    if ctype == "MEMORY":
        words = list(state["words"])
        if inputs.get("WE", 0) & 1:
            addr = inputs.get("ADDR", 0)
            if addr < len(words):
                words[addr] = inputs.get("DIN", 0) & m
        return {"words": words}
    if ctype in ("STACK", "FIFO"):
        items = list(state["items"])
        depth = spec.get("depth", 16)
        push = inputs.get("PUSH", 0) & 1
        pop = inputs.get("POP", 0) & 1
        if pop and items:
            if ctype == "STACK":
                items.pop()
            else:
                items.pop(0)
        if push and len(items) < depth:
            items.append(inputs.get("DIN", 0) & m)
        return {"items": items}
    raise ValueError(f"{ctype} is not sequential")
