"""GENUS component generators.

A :class:`Generator` produces a family of similar components from a
parameter list.  Obligatory parameters must be supplied; optional ones
fall back to defaults (paper section 4).  The generator translates its
``GC_*`` parameters into a :class:`~repro.core.specs.ComponentSpec`,
which determines ports and behavior for the whole system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.core.specs import ComponentSpec, make_spec
from repro.genus.attributes import ParamError, Parameter, resolve_params
from repro.genus.components import Component
from repro.genus.types import TypeClass, type_class_of


class GeneratorError(ValueError):
    """A generator could not produce a component."""


#: Generator names (as used in LEGEND NAME: fields) -> component types.
GENERATOR_CTYPES = {
    "GATE": "GATE",
    "BOOLEAN_GATE": "GATE",
    "MUX": "MUX",
    "SELECTOR": "SELECTOR",
    "DECODER": "DECODER",
    "ENCODER": "ENCODER",
    "ADDER": "ADD",
    "SUBTRACTOR": "SUB",
    "ADDER_SUBTRACTOR": "ADDSUB",
    "INCREMENTER": "INC",
    "DECREMENTER": "DEC",
    "ALU": "ALU",
    "LU": "ALU",
    "COMPARATOR": "COMPARATOR",
    "SHIFTER": "SHIFTER",
    "BARREL_SHIFTER": "BARREL_SHIFTER",
    "MULTIPLIER": "MULT",
    "DIVIDER": "DIV",
    "REGISTER": "REG",
    "SHIFT_REGISTER": "SHIFT_REG",
    "COUNTER": "COUNTER",
    "REGISTER_FILE": "REGFILE",
    "MEMORY": "MEMORY",
    "STACK": "STACK",
    "FIFO": "FIFO",
    "CLA_GENERATOR": "CLA_GEN",
    "PORT": "PORT",
    "BUFFER": "BUFFER",
    "CLOCK_DRIVER": "CLOCK_DRIVER",
    "SCHMITT_TRIGGER": "SCHMITT",
    "TRISTATE": "TRISTATE",
    "BUS": "BUS",
    "DELAY": "DELAY",
    "CONCAT": "CONCAT",
    "EXTRACT": "EXTRACT",
    "CLOCK_GENERATOR": "CLOCK_GEN",
    "WIRED_OR": "WIRED_OR",
}

#: ``GC_*`` parameter names -> ComponentSpec attribute keys.  ``width``
#: is special-cased (it is a first-class spec field, not an attribute).
PARAM_TO_ATTR = {
    "GC_INPUT_WIDTH": "width",
    "GC_WIDTH_B": "width_b",
    "GC_NUM_INPUTS": "n_inputs",
    "GC_NUM_OUTPUTS": "n_outputs",
    "GC_NUM_DRIVERS": "n_drivers",
    "GC_FUNCTION_LIST": "ops",
    "GC_STYLE": "style",
    "GC_ENABLE_FLAG": "enable",
    "GC_CARRY_IN": "carry_in",
    "GC_CARRY_OUT": "carry_out",
    "GC_GROUP_CARRY": "group_carry",
    "GC_CASCADED": "cascaded",
    "GC_VALID_FLAG": "valid",
    "GC_GATE_KIND": "kind",
    "GC_ASYNC_SET": "async_set",
    "GC_ASYNC_RESET": "async_reset",
    "GC_COMPLEMENT_OUT": "complement_out",
    "GC_NUM_WORDS": "n_words",
    "GC_NUM_READ": "n_read",
    "GC_NUM_WRITE": "n_write",
    "GC_DEPTH": "depth",
    "GC_NUM_GROUPS": "groups",
    "GC_SET_VALUE": "value",
    "GC_LSB": "lsb",
    "GC_SRC_WIDTH": "src_width",
    "GC_DIRECTION": "direction",
    "GC_PART_WIDTHS": "part_widths",
}

#: Parameters that carry metadata only and never reach the spec.
METADATA_PARAMS = {"GC_COMPILER_NAME", "GC_NUM_FUNCTIONS", "GC_NUM_STYLES"}


def build_spec_from_params(ctype: str, params: Dict[str, Any]) -> ComponentSpec:
    """Translate resolved ``GC_*`` parameters into a component spec."""
    width = 1
    attrs: Dict[str, Any] = {}
    for name, value in params.items():
        if name in METADATA_PARAMS:
            continue
        attr = PARAM_TO_ATTR.get(name)
        if attr is None:
            raise GeneratorError(f"no spec mapping for parameter {name!r}")
        if attr == "width":
            width = value
        elif attr in ("enable", "carry_in", "carry_out", "group_carry", "cascaded",
                      "valid", "async_set", "async_reset", "complement_out"):
            attrs[attr] = bool(value) or None
        else:
            attrs[attr] = value
    n_functions = params.get("GC_NUM_FUNCTIONS")
    ops = attrs.get("ops")
    if n_functions is not None and ops is not None and len(ops) != n_functions:
        raise GeneratorError(
            f"{ctype}: GC_NUM_FUNCTIONS={n_functions} but GC_FUNCTION_LIST "
            f"has {len(ops)} entries"
        )
    if ctype == "CONCAT" and "part_widths" not in attrs:
        # A homogeneous concat: GC_NUM_INPUTS parts of GC_INPUT_WIDTH each.
        attrs["part_widths"] = tuple([width] * attrs.get("n_inputs", 2))
    if ctype == "PORT" and "direction" in attrs:
        attrs["direction"] = str(attrs["direction"]).lower()
    if ctype == "GATE" and "kind" in attrs:
        attrs["kind"] = str(attrs["kind"]).upper()
    try:
        return make_spec(ctype, width, **attrs)
    except (TypeError, ValueError) as exc:
        raise GeneratorError(f"{ctype}: cannot build spec: {exc}") from exc


@dataclass
class Generator:
    """A GENUS component generator.

    ``name`` is the unique generator name; ``class_name`` is the LEGEND
    CLASS field (e.g. ``Clocked``); ``parameters`` are the declared
    ``GC_*`` descriptors; ``styles`` the allowed GC_STYLE values.
    """

    name: str
    class_name: str = "Combinational"
    parameters: Tuple[Parameter, ...] = ()
    styles: Tuple[str, ...] = ()
    operations_doc: Tuple[str, ...] = ()
    vhdl_model: str = ""
    op_classes: str = "default"
    description: str = ""

    def __post_init__(self) -> None:
        if self.name.upper() not in GENERATOR_CTYPES:
            raise GeneratorError(f"unknown generator name {self.name!r}")

    @property
    def ctype(self) -> str:
        return GENERATOR_CTYPES[self.name.upper()]

    @property
    def type_class(self) -> TypeClass:
        return type_class_of(self.ctype)

    @property
    def max_params(self) -> int:
        return len(self.parameters)

    def generate(self, **supplied: Any) -> Component:
        """Produce a fully-parameterized component.

        Raises :class:`~repro.genus.attributes.ParamError` for missing
        obligatory parameters and :class:`GeneratorError` for parameter
        combinations that yield no valid spec.
        """
        resolved = resolve_params(self.parameters, supplied, self.styles)
        spec = build_spec_from_params(self.ctype, resolved)
        return Component(
            name=component_name(self.name, resolved, spec),
            generator_name=self.name,
            spec=spec,
            params=resolved,
            vhdl_model=self.vhdl_model,
        )


def component_name(generator_name: str, params: Dict[str, Any], spec: ComponentSpec) -> str:
    """Deterministic, readable component name, e.g.
    ``COUNTER_W8_SYNCHRONOUS``."""
    pieces = [generator_name.upper(), f"W{spec.width}"]
    style = params.get("GC_STYLE")
    if style:
        pieces.append(str(style))
    kind = spec.get("kind")
    if kind:
        pieces.append(str(kind))
    n_inputs = spec.get("n_inputs")
    if n_inputs:
        pieces.append(f"N{n_inputs}")
    ops = spec.get("ops")
    if ops:
        pieces.append(f"F{len(ops)}")
    return "_".join(pieces)
