"""Typed requests and results for the session layer.

A :class:`SynthesisRequest` names *what* to synthesize -- a GENUS
:class:`~repro.core.specs.ComponentSpec`, a whole
:class:`~repro.netlist.netlist.Netlist`, LEGEND generator-description
source text, or an HLS behavioral :class:`~repro.hls.ir.Program` --
in one uniform envelope the :class:`~repro.api.session.Session`
dispatches on.  A :class:`SynthesisJob` is the corresponding result:
the surviving design alternatives plus Pareto points, Figure-3 reports,
and lazy VHDL emission.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.core.design_space import DesignTree, SynthesisError
from repro.core.specs import ComponentSpec
from repro.core.synthesizer import DesignAlternative, SynthesisResult
from repro.netlist.netlist import Netlist

#: The input forms a request can carry, in dispatch order.
REQUEST_KINDS = ("spec", "netlist", "legend", "hls")


@dataclass
class SynthesisRequest:
    """One unit of synthesis work, in any of the four input languages.

    Build requests with the ``from_*`` constructors (or pass raw
    objects straight to :meth:`Session.synthesize`, which coerces them
    through :meth:`coerce`):

    - :meth:`from_spec` -- a GENUS component specification;
    - :meth:`from_netlist` -- a netlist of GENUS instances (each
      distinct module spec is mapped, sharing the design space);
    - :meth:`from_legend` -- LEGEND source text; the named generator is
      elaborated with ``params`` and its component spec is synthesized;
    - :meth:`from_hls` -- a behavioral program; high-level synthesis
      produces the GENUS datapath netlist which is then mapped.
    """

    kind: str
    label: str = ""
    spec: Optional[ComponentSpec] = None
    netlist: Optional[Netlist] = None
    legend_source: Optional[str] = None
    generator: Optional[str] = None
    params: Dict[str, Any] = field(default_factory=dict)
    program: Any = None
    constraints: Any = None

    def __post_init__(self) -> None:
        if self.kind not in REQUEST_KINDS:
            raise ValueError(
                f"unknown request kind {self.kind!r}; expected one of "
                f"{', '.join(REQUEST_KINDS)}"
            )

    # -- constructors --------------------------------------------------
    @classmethod
    def from_spec(cls, spec: ComponentSpec, label: str = "") -> "SynthesisRequest":
        return cls(kind="spec", spec=spec, label=label or str(spec))

    @classmethod
    def from_netlist(cls, netlist: Netlist, label: str = "") -> "SynthesisRequest":
        return cls(kind="netlist", netlist=netlist,
                   label=label or getattr(netlist, "name", "netlist"))

    @classmethod
    def from_legend(
        cls,
        source: str,
        generator: Optional[str] = None,
        label: str = "",
        params: Optional[Dict[str, Any]] = None,
        **kwargs: Any,
    ) -> "SynthesisRequest":
        """``params`` and keyword arguments both feed the generator;
        the explicit dict exists so parameter names that collide with
        this signature (``label``, ``generator``, ``source`` -- all
        legal LEGEND identifiers) can still be passed, e.g. by the
        serve layer relaying client JSON."""
        merged = dict(params or {})
        merged.update(kwargs)
        return cls(kind="legend", legend_source=source, generator=generator,
                   params=merged, label=label or (generator or "legend"))

    @classmethod
    def from_hls(cls, program: Any, constraints: Any = None,
                 label: str = "") -> "SynthesisRequest":
        return cls(kind="hls", program=program, constraints=constraints,
                   label=label or getattr(program, "name", "hls"))

    @classmethod
    def coerce(cls, target: Any) -> "SynthesisRequest":
        """Wrap a raw synthesis target in a request.

        Accepts an existing request (returned unchanged), a
        ``ComponentSpec``, a ``Netlist``, an HLS ``Program``, or a
        string -- multi-line strings are treated as LEGEND source,
        single-line ones as ``name:width`` spec shorthand (``alu:64``).
        """
        if isinstance(target, cls):
            return target
        if isinstance(target, ComponentSpec):
            return cls.from_spec(target)
        if isinstance(target, Netlist):
            return cls.from_netlist(target)
        from repro.hls.ir import Program

        if isinstance(target, Program):
            return cls.from_hls(target)
        if isinstance(target, str):
            # LEGEND descriptions are inherently multi-line; single-line
            # strings are always spec shorthands (so a registered name
            # like "pulse_generator:8" never trips the LEGEND path).
            if "\n" in target:
                return cls.from_legend(target)
            from repro.api.registry import parse_spec

            return cls.from_spec(parse_spec(target), label=target)
        raise TypeError(
            f"cannot synthesize {type(target).__name__}: expected a "
            f"SynthesisRequest, ComponentSpec, Netlist, hls Program, "
            f"LEGEND source text, or 'name:width' shorthand"
        )

    def describe(self) -> str:
        return f"{self.kind}:{self.label}"

    # -- content addressing -------------------------------------------
    def token(self) -> Optional[list]:
        """Canonical JSON-able token of *what* this request asks for:
        the root spec, the LEGEND (source digest, generator, params)
        triple, or the HLS program structure.  ``None`` for requests
        that are not content-addressable -- netlist requests (the
        caller owns and may mutate the netlist) and HLS programs with
        constructs the canonical walker does not know.  This is the
        request-side half of the result store's fingerprint; the
        session folds in the engine-side digests."""
        from repro.store.fingerprint import request_token

        return request_token(self)

    def digest(self) -> Optional[str]:
        """SHA-256 hex digest of :meth:`token` (stable across processes
        and hash seeds), or ``None`` when not content-addressable."""
        from repro.store.fingerprint import digest as _digest

        token = self.token()
        return None if token is None else _digest(token)


class SynthesisJob:
    """The result of one request: alternatives plus derived artifacts.

    Wraps the legacy :class:`~repro.core.synthesizer.SynthesisResult`
    (kept as the canonical alternatives container so existing report
    helpers keep working) and adds Pareto points, report/emitter
    dispatch, and lazy VHDL.  ``component`` is set for LEGEND requests
    (the elaborated GENUS component), ``hls`` for behavioral requests
    (the full :class:`~repro.hls.synthesize.HLSResult`).
    """

    def __init__(
        self,
        request: SynthesisRequest,
        result: SynthesisResult,
        session: Any = None,
        component: Any = None,
        hls: Any = None,
    ) -> None:
        self.request = request
        self.result = result
        self.session = session
        self._component = component
        self._hls = hls
        #: True when this job was answered from the result store
        #: without running expansion or evaluation.
        self.from_store = False
        #: Store-hit jobs get a thunk that rebuilds the cheap frontend
        #: artifacts (elaborated LEGEND component / HLS result) on
        #: first access instead of on every hit -- the serving path's
        #: JSON body reads neither.
        self._artifact_loader = None

    def _load_artifacts(self) -> None:
        loader, self._artifact_loader = self._artifact_loader, None
        if loader is not None:
            self._component, self._hls = loader()

    @property
    def component(self):
        """The elaborated GENUS component (LEGEND requests); rebuilt
        lazily on store-hit jobs."""
        if self._component is None:
            self._load_artifacts()
        return self._component

    @property
    def hls(self):
        """The full HLS result (behavioral requests); rebuilt lazily
        on store-hit jobs."""
        if self._hls is None:
            self._load_artifacts()
        return self._hls

    # -- the alternatives ---------------------------------------------
    @property
    def alternatives(self) -> List[DesignAlternative]:
        return self.result.alternatives

    @property
    def spec(self) -> Optional[ComponentSpec]:
        return self.result.spec

    @property
    def stats(self) -> Dict[str, int]:
        return self.result.stats

    @property
    def runtime_seconds(self) -> float:
        return self.result.runtime_seconds

    @property
    def phases(self) -> Dict[str, float]:
        """Per-phase engine seconds for this request (see
        :attr:`repro.core.synthesizer.SynthesisResult.phases`)."""
        return self.result.phases

    def __len__(self) -> int:
        return len(self.result)

    def __iter__(self) -> Iterator[DesignAlternative]:
        return iter(self.result.alternatives)

    def smallest(self) -> DesignAlternative:
        return self.result.smallest()

    def fastest(self) -> DesignAlternative:
        return self.result.fastest()

    def alternative(self, index: int) -> DesignAlternative:
        for alt in self.result.alternatives:
            if alt.index == index:
                return alt
        raise SynthesisError(f"no alternative #{index}")

    # -- derived artifacts --------------------------------------------
    def points(self) -> List[Tuple[float, float, float, float]]:
        """(area, delay, d_area%, d_delay%) per alternative, relative to
        the smallest design -- the quantities Figure 3 annotates."""
        from repro.core.report import figure3_points

        return figure3_points(self.result)

    def table(self) -> str:
        return self.result.table()

    def report(self, title: Optional[str] = None) -> str:
        """The Figure-3 style report block."""
        from repro.core.report import figure3_report

        return figure3_report(self.result, title or self.title())

    def title(self) -> str:
        return f"DTAS alternatives for {self.request.label}"

    def tree(self, alt: Optional[DesignAlternative] = None) -> DesignTree:
        """Materialize one alternative's hierarchical design (the
        smallest by default)."""
        return (alt or self.smallest()).tree()

    def vhdl(self, alt: Optional[DesignAlternative] = None) -> str:
        """Structural VHDL for one alternative (lazy; the smallest by
        default)."""
        from repro.vhdl import design_tree_vhdl

        return design_tree_vhdl(self.tree(alt))

    def behavioral_vhdl(self) -> str:
        """Behavioral VHDL model of the request's component spec."""
        if self.result.spec is None:
            raise SynthesisError(
                "behavioral VHDL needs a single root spec; this job "
                "synthesized a whole netlist"
            )
        from repro.vhdl import behavioral_model

        return behavioral_model(self.result.spec)

    def emit(self, *names: str) -> str:
        """Render this job through named emitters (see
        :data:`repro.api.registry.EMITTERS`), joined by blank lines."""
        from repro.api.registry import EMITTERS

        if not names:
            names = ("report",)
        return "\n\n".join(EMITTERS.create(name, self) for name in names)

    def __repr__(self) -> str:
        return (f"SynthesisJob({self.request.describe()}: "
                f"{len(self)} alternatives)")
