"""The ``repro`` command-line interface.

Runs the full flow from the shell on top of :class:`repro.api.Session`;
every backend (library, rulebase, filter, emitter, spec shorthand) is
resolved by name through :mod:`repro.api.registry`::

    python -m repro synth --spec alu:64 --library lsi_logic --emit vhdl,report
    python -m repro synth --spec adder:16 --spec adder:32 --emit report
    python -m repro synth --legend counter.lgd --generator COUNTER \\
        --param GC_INPUT_WIDTH=8 --emit report
    python -m repro list

Multiple ``--spec``/``--legend`` targets run as one batch through a
single session, sharing the expanded design space and every compiled
timing program (the cache-amortized serving path).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.api import registry
from repro.api.requests import SynthesisRequest

PROG = "repro"


def _parse_param(text: str) -> Any:
    """CLI ``K=V`` values: int when possible, else bare string."""
    try:
        return int(text)
    except ValueError:
        return text


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=PROG,
        description="DTAS functional synthesis (Dutt & Kipps, DAC'91) -- "
                    "map generic RTL components into a cell library.",
    )
    sub = parser.add_subparsers(dest="command", metavar="command")

    synth = sub.add_parser(
        "synth",
        help="synthesize one or more targets through a shared session",
        description="Synthesize component specs and/or LEGEND generators "
                    "into the target cell library, then render each job "
                    "through the requested emitters.",
    )
    synth.add_argument(
        "--spec", action="append", default=[], metavar="NAME:WIDTH",
        help="component shorthand such as alu:64 or adder:16 "
             "(repeatable; see 'repro list specs')")
    synth.add_argument(
        "--legend", action="append", default=[], metavar="FILE", type=Path,
        help="LEGEND source file to elaborate and map (repeatable)")
    synth.add_argument(
        "--generator", metavar="NAME",
        help="generator name inside the LEGEND source (default: first)")
    synth.add_argument(
        "--param", action="append", default=[], metavar="K=V",
        help="generator parameter for --legend (repeatable), "
             "e.g. GC_INPUT_WIDTH=8")
    synth.add_argument(
        "--library", default="lsi_logic", metavar="NAME",
        help="target cell library (default: lsi_logic)")
    synth.add_argument(
        "--rulebase", default=None, metavar="NAME",
        help="rulebase policy: auto (default), standard, lola")
    synth.add_argument(
        "--filter", default="pareto", metavar="NAME[:ARG]", dest="perf_filter",
        help="performance filter, e.g. pareto, tradeoff:0.05, top_k:4, "
             "keep_all (default: pareto)")
    synth.add_argument(
        "--emit", default="report", metavar="NAMES",
        help="comma-separated emitters (default: report; "
             "see 'repro list emitters')")
    synth.add_argument(
        "--max-combinations", type=int, default=None, metavar="N",
        help="cap on the per-node S1 cross product")
    synth.add_argument(
        "--order", default=None, metavar="NAME",
        help="S1 enumeration order: lex (default), frontier, or a "
             "registered name (see 'repro list orders'); frontier makes "
             "--max-combinations keep the best designs")
    synth.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="workers for parallel subtree evaluation (default: 1)")
    synth.add_argument(
        "--parallel-backend", default="thread", choices=["thread", "process"],
        help="worker backend for --jobs > 1 (process = fork-based "
             "multiprocessing; default: thread)")
    synth.add_argument(
        "--prune-partial", action="store_true",
        help="enable dominance pre-pruning before the S1 cross product")
    synth.add_argument(
        "--output", type=Path, default=None, metavar="PATH",
        help="write emitted text to PATH instead of stdout")

    list_parser = sub.add_parser(
        "list",
        help="show the registered backends",
        description="Show registered libraries, rulebases, filters, "
                    "emitters, and spec shorthands.",
    )
    list_parser.add_argument(
        "what", nargs="?", default="all",
        choices=["all", "libraries", "rulebases", "filters", "emitters",
                 "specs", "orders"],
        help="which registry to show (default: all)")
    return parser


# ---------------------------------------------------------------------------
# subcommands
# ---------------------------------------------------------------------------

def _cmd_synth(args: argparse.Namespace) -> int:
    if not args.spec and not args.legend:
        print(f"{PROG} synth: nothing to do -- pass --spec and/or --legend",
              file=sys.stderr)
        return 2

    params: Dict[str, Any] = {}
    for item in args.param:
        key, sep, value = item.partition("=")
        if not sep:
            print(f"{PROG} synth: --param {item!r} is not K=V",
                  file=sys.stderr)
            return 2
        params[key] = _parse_param(value)

    requests: List[SynthesisRequest] = []
    try:
        for shorthand in args.spec:
            requests.append(SynthesisRequest.from_spec(
                registry.parse_spec(shorthand), label=shorthand))
        for path in args.legend:
            requests.append(SynthesisRequest.from_legend(
                path.read_text(), generator=args.generator,
                label=path.stem, **params))
        emit_names = [name for name in args.emit.split(",") if name]
        for name in emit_names:
            registry.EMITTERS.get(name)  # fail fast on typos

        from repro.api.session import Session

        session = Session(
            library=args.library,
            rulebase=args.rulebase,
            perf_filter=args.perf_filter,
            prune_partial=args.prune_partial,
            max_combinations=args.max_combinations,
            jobs=args.jobs,
            parallel_backend=args.parallel_backend,
            order=args.order,
        )
    except (registry.RegistryError, OSError, ValueError) as error:
        print(f"{PROG} synth: {error}", file=sys.stderr)
        return 2

    from repro.core.design_space import SynthesisError
    from repro.legend.errors import LegendError

    try:
        jobs = session.map(requests)
    # ValueError covers the genus elaboration errors (GeneratorError,
    # ParamError subclass it): a bad --generator or --param must report
    # cleanly, not traceback.
    except (SynthesisError, LegendError, ValueError) as error:
        print(f"{PROG} synth: {error}", file=sys.stderr)
        return 1

    blocks: List[str] = []
    for job in jobs:
        blocks.append(job.emit(*emit_names))
    text = "\n\n".join(blocks)
    if args.output is not None:
        try:
            args.output.write_text(text + "\n")
        except OSError as error:
            print(f"{PROG} synth: cannot write {args.output}: {error}",
                  file=sys.stderr)
            return 2
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    sections = {
        "libraries": registry.LIBRARIES,
        "rulebases": registry.RULEBASES,
        "filters": registry.FILTERS,
        "emitters": registry.EMITTERS,
        "specs": registry.SPECS,
        "orders": registry.ORDERS,
    }
    selected = sections if args.what == "all" else {args.what: sections[args.what]}
    blocks = []
    for title, reg in selected.items():
        lines = [f"{title}:"]
        for name in reg.names():
            description = reg.describe(name)
            lines.append(f"  {name:<16} {description}".rstrip())
        blocks.append("\n".join(lines))
    print("\n\n".join(blocks))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 0
    if args.command == "synth":
        return _cmd_synth(args)
    if args.command == "list":
        return _cmd_list(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
