"""The ``repro`` command-line interface.

Runs the full flow from the shell on top of :class:`repro.api.Session`;
every backend (library, rulebase, filter, emitter, spec shorthand) is
resolved by name through :mod:`repro.api.registry`::

    python -m repro synth --spec alu:64 --library lsi_logic --emit vhdl,report
    python -m repro synth --spec adder:16 --spec adder:32 --emit report
    python -m repro synth --legend counter.lgd --generator COUNTER \\
        --param GC_INPUT_WIDTH=8 --emit report
    python -m repro list
    python -m repro serve --port 8473
    python -m repro warm --spec alu:64 --spec adder:16
    python -m repro warm --nodes --spec alu:64
    python -m repro cache info
    python -m repro cache prune --max-mb 64
    python -m repro cache nodes info
    python -m repro serve --port 8473 --trace --access-log
    python -m repro trace tail --url http://127.0.0.1:8473 --min-ms 10
    python -m repro trace show TRACE_ID --url http://127.0.0.1:8473

Multiple ``--spec``/``--legend`` targets run as one batch through a
single session, sharing the expanded design space and every compiled
timing program (the cache-amortized serving path).  ``serve`` puts the
long-running HTTP service (:mod:`repro.serve`) in front of the same
sessions; ``warm`` prefills the persistent result store
(:mod:`repro.store`) and ``cache`` maintains it.

Unknown backend names (library, rulebase, filter, order, emitter,
spec, store, node store) must exit with status 2 and a message listing
the registered names -- never a raw ``KeyError`` traceback.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.api import registry
from repro.api.requests import SynthesisRequest

PROG = "repro"


def _parse_param(text: str) -> Any:
    """CLI ``K=V`` values: int when possible, else bare string."""
    try:
        return int(text)
    except ValueError:
        return text


def _add_target_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--spec", action="append", default=[], metavar="NAME:WIDTH",
        help="component shorthand such as alu:64 or adder:16 "
             "(repeatable; see 'repro list specs')")
    parser.add_argument(
        "--legend", action="append", default=[], metavar="FILE", type=Path,
        help="LEGEND source file to elaborate and map (repeatable)")
    parser.add_argument(
        "--generator", metavar="NAME",
        help="generator name inside the LEGEND source (default: first)")
    parser.add_argument(
        "--param", action="append", default=[], metavar="K=V",
        help="generator parameter for --legend (repeatable), "
             "e.g. GC_INPUT_WIDTH=8")


def _add_engine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--library", default="lsi_logic", metavar="NAME",
        help="target cell library (default: lsi_logic)")
    parser.add_argument(
        "--rulebase", default=None, metavar="NAME",
        help="rulebase policy: auto (default), standard, lola")
    parser.add_argument(
        "--filter", default="pareto", metavar="NAME[:ARG]", dest="perf_filter",
        help="performance filter, e.g. pareto, tradeoff:0.05, top_k:4, "
             "keep_all (default: pareto)")
    parser.add_argument(
        "--max-combinations", type=int, default=None, metavar="N",
        help="cap on the per-node S1 cross product")
    parser.add_argument(
        "--order", default=None, metavar="NAME",
        help="S1 enumeration order: lex (default), frontier, or a "
             "registered name (see 'repro list orders'); frontier makes "
             "--max-combinations keep the best designs")
    parser.add_argument(
        "--batch", type=int, default=None, metavar="N",
        help="block size for vectorized S1 combination costing "
             "(default: engine default; 1 forces the scalar path; "
             "results are identical for every value)")


def _add_store_arg(parser: argparse.ArgumentParser, default,
                   help_suffix: str = "") -> None:
    parser.add_argument(
        "--store", default=default, metavar="NAME|PATH",
        help="result store: a registered name (default, memory) or an "
             "SQLite file path" + help_suffix)


def _add_node_store_arg(parser: argparse.ArgumentParser, default,
                        help_suffix: str = "") -> None:
    parser.add_argument(
        "--node-store", default=default, metavar="NAME|PATH",
        help="per-node option cache for subtree-level work sharing: a "
             "registered name (default, memory) or an SQLite file path "
             "(may be the result store's file)" + help_suffix)


def _add_resilience_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--request-timeout", type=float, default=None, metavar="S",
        help="per-request deadline in seconds (default: unbounded); "
             "a request that exceeds it gets a 504, and clients can "
             "tighten it per call with an X-Repro-Deadline-Ms header")
    parser.add_argument(
        "--breaker-threshold", type=int, default=5, metavar="N",
        help="consecutive store failures before the circuit breaker "
             "opens and serving goes engine-only (default: 5)")
    parser.add_argument(
        "--breaker-reset", type=float, default=30.0, metavar="S",
        help="seconds an open breaker waits before a half-open probe "
             "(default: 30)")


def _add_trace_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", action="store_true",
        help="trace every request (shorthand for --trace-sample 1.0)")
    parser.add_argument(
        "--trace-sample", type=float, default=None, metavar="RATE",
        help="fraction of requests to trace, 0.0-1.0 (default: 0.0 = "
             "tracing off; traced requests get an X-Repro-Trace-Id "
             "response header and land in GET /debug/traces)")
    parser.add_argument(
        "--trace-ring", type=int, default=256, metavar="N",
        help="finished spans kept in memory for /debug/traces "
             "(default: 256)")
    parser.add_argument(
        "--trace-export", default=None, metavar="PATH",
        help="also append every finished span as one JSON line to PATH")
    parser.add_argument(
        "--access-log", nargs="?", const="-", default=None, metavar="PATH",
        help="write one structured JSON line per request (endpoint, "
             "status, duration, source, trace id); with no PATH (or "
             "'-') lines go to stdout, otherwise to PATH with "
             "size-bounded rotation (see --access-log-max-mb)")
    parser.add_argument(
        "--access-log-max-mb", type=float, default=64.0, metavar="MB",
        help="rotate a file access log to PATH.1 when it would exceed "
             "MB megabytes (default: 64; 0 = never rotate)")


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    """History sampling + SLO flags (shared by serve and fleet)."""
    parser.add_argument(
        "--history", action="store_true",
        help="sample /metrics into bounded in-process time-series "
             "rings and serve GET /metrics/history (the data source "
             "for /debug/dashboard and 'repro top')")
    parser.add_argument(
        "--history-interval", type=float, default=5.0, metavar="S",
        help="seconds between history samples (default: 5)")
    parser.add_argument(
        "--history-retention", type=float, default=3600.0, metavar="S",
        help="seconds of history kept per series (default: 3600)")
    parser.add_argument(
        "--slo", action="append", default=None, metavar="SPEC",
        help="declare an SLO, repeatable; SPEC is "
             "[NAME=]availability:TARGET:WINDOW (e.g. "
             "availability:99.9:5m) or [NAME=]latency:pQQ:THRESHOLD:"
             "WINDOW[:ENDPOINT] (e.g. latency:p99:250ms:5m); "
             "objectives are burn-rate evaluated and served at "
             "GET /slo (implies --history)")
    parser.add_argument(
        "--slo-file", default=None, metavar="PATH",
        help="load objectives from a JSON file "
             "({\"objectives\": [...]}; see README)")


def _trace_sample(args: argparse.Namespace) -> float:
    """--trace-sample wins; bare --trace means sample everything."""
    if args.trace_sample is not None:
        return args.trace_sample
    return 1.0 if args.trace else 0.0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=PROG,
        description="DTAS functional synthesis (Dutt & Kipps, DAC'91) -- "
                    "map generic RTL components into a cell library.",
    )
    sub = parser.add_subparsers(dest="command", metavar="command")

    synth = sub.add_parser(
        "synth",
        help="synthesize one or more targets through a shared session",
        description="Synthesize component specs and/or LEGEND generators "
                    "into the target cell library, then render each job "
                    "through the requested emitters.",
    )
    _add_target_args(synth)
    _add_engine_args(synth)
    synth.add_argument(
        "--emit", default="report", metavar="NAMES",
        help="comma-separated emitters (default: report; "
             "see 'repro list emitters')")
    synth.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="workers for parallel subtree evaluation (default: 1)")
    synth.add_argument(
        "--parallel-backend", default="thread", choices=["thread", "process"],
        help="worker backend for --jobs > 1 (process = fork-based "
             "multiprocessing; default: thread)")
    synth.add_argument(
        "--prune-partial", action="store_true",
        help="enable dominance pre-pruning before the S1 cross product")
    _add_store_arg(synth, default=None,
                   help_suffix=" (default: no persistence)")
    _add_node_store_arg(synth, default=None,
                        help_suffix=" (default: no node cache)")
    synth.add_argument(
        "--output", type=Path, default=None, metavar="PATH",
        help="write emitted text to PATH instead of stdout")

    serve = sub.add_parser(
        "serve",
        help="run the long-lived HTTP synthesis service",
        description="Serve POST /synthesize and /batch (json-emitter "
                    "schema) plus GET /healthz and /metrics.  One session "
                    "per engine configuration, identical in-flight "
                    "requests coalesced, store hits served without the "
                    "engine.  Engine flags set the service defaults; "
                    "requests may override them per call.",
    )
    serve.add_argument("--host", default="127.0.0.1", metavar="ADDR",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=None, metavar="N",
                       help="TCP port (default: 8473; 0 = ephemeral)")
    _add_engine_args(serve)
    _add_store_arg(serve, default="default",
                   help_suffix=" (default: the shared on-disk store)")
    serve.add_argument("--no-store", action="store_true",
                       help="serve without any persistent store")
    _add_node_store_arg(serve, default="auto",
                        help_suffix=" (default: auto = the nodes table "
                                     "in the result store's file)")
    serve.add_argument("--no-node-store", action="store_true",
                       help="serve without the per-node option cache")
    serve.add_argument("--workers", type=int, default=2, metavar="N",
                       help="engine executor threads (default: 2)")
    serve.add_argument("--drain-timeout", type=float, default=10.0,
                       metavar="S",
                       help="on SIGTERM/SIGINT, wait up to S seconds for "
                            "in-flight requests before closing the stores "
                            "and exiting (default: 10)")
    _add_resilience_args(serve)
    _add_trace_args(serve)
    _add_obs_args(serve)

    fleet = sub.add_parser(
        "fleet",
        help="run a multi-worker serving tier (router + N serve workers)",
        description="Spawn and supervise N 'repro serve' worker processes "
                    "sharing one store, and route POST /synthesize by "
                    "consistent hashing so identical requests land on the "
                    "same worker (coalescing stays exact fleet-wide).  "
                    "POST /batch is split per item; GET /metrics "
                    "aggregates every worker plus the router's own "
                    "counters.  Crashed workers restart with backoff; "
                    "SIGTERM drains the router, then the workers.",
    )
    fleet.add_argument("--host", default="127.0.0.1", metavar="ADDR",
                       help="router bind address (default: 127.0.0.1)")
    fleet.add_argument("--port", type=int, default=None, metavar="N",
                       help="router TCP port (default: 8473; 0 = ephemeral); "
                            "workers always bind ephemeral local ports")
    fleet.add_argument("--workers", type=int, default=2, metavar="N",
                       help="worker processes to spawn (default: 2)")
    _add_engine_args(fleet)
    _add_store_arg(fleet, default="default",
                   help_suffix=" shared by every worker (default: the "
                               "shared on-disk store)")
    fleet.add_argument("--no-store", action="store_true",
                       help="serve without any persistent store")
    _add_node_store_arg(fleet, default="auto",
                        help_suffix=" (default: auto = the nodes table "
                                    "in the result store's file)")
    fleet.add_argument("--no-node-store", action="store_true",
                       help="serve without the per-node option cache")
    fleet.add_argument("--engine-workers", type=int, default=2, metavar="N",
                       help="engine executor threads per worker "
                            "(default: 2)")
    fleet.add_argument("--drain-timeout", type=float, default=10.0,
                       metavar="S",
                       help="on SIGTERM/SIGINT, wait up to S seconds for "
                            "in-flight requests before stopping the "
                            "workers (default: 10)")
    _add_resilience_args(fleet)
    _add_trace_args(fleet)
    _add_obs_args(fleet)
    fleet.add_argument(
        "--chaos", default=None, metavar="MODE:PERIOD",
        help="fault-injection harness: kill-worker:PERIOD SIGKILLs one "
             "ready worker (round-robin) every PERIOD seconds, "
             "exercising supervised restart and failover retries "
             "(e.g. kill-worker:8)")

    warm = sub.add_parser(
        "warm",
        help="prefill the result store with the given targets",
        description="Run targets through a store-backed session so later "
                    "processes (and the serve endpoints) answer them "
                    "without expansion or evaluation.  Exits 1 (with a "
                    "per-target summary) when any target fails.",
    )
    _add_target_args(warm)
    _add_engine_args(warm)
    _add_store_arg(warm, default="default",
                   help_suffix=" (default: the shared on-disk store)")
    warm.add_argument(
        "--nodes", action="store_true",
        help="also publish per-node option lists, so *overlapping* "
             "future requests start half-warm (see 'repro cache nodes')")
    _add_node_store_arg(warm, default=None,
                        help_suffix=" (default with --nodes: the nodes "
                                     "table in the result store's file)")
    warm.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="workers for parallel subtree evaluation (default: 1)")

    cache = sub.add_parser(
        "cache",
        help="inspect and maintain the persistent result store",
        description="Inspect (info, list), bound (prune --max-mb), or "
                    "empty (clear) the content-addressed result store.  "
                    "'cache nodes info|list|prune|clear' maintains the "
                    "per-node option cache sharing the same file "
                    "(prune budgets are shared: --max-mb bounds result "
                    "and node payloads together).",
    )
    cache.add_argument(
        "action",
        choices=["info", "list", "show", "prune", "clear", "nodes"],
        help="what to do ('nodes' takes its own sub-action)")
    cache.add_argument(
        "fingerprint", nargs="?", default=None, metavar="ARG",
        help="show: entry to display (any unambiguous prefix); "
             "nodes: sub-action (info, list, prune, clear)")
    _add_store_arg(cache, default="default",
                   help_suffix=" (default: the shared on-disk store)")
    cache.add_argument(
        "--max-mb", type=float, default=None, metavar="MB",
        help="prune: evict least-recently-used entries until the "
             "payload total fits this many megabytes")

    trace = sub.add_parser(
        "trace",
        help="inspect recent request traces on a running server",
        description="Query GET /debug/traces on a running 'repro serve' "
                    "or 'repro fleet' instance (started with --trace or "
                    "--trace-sample).  'tail' lists recent traces one "
                    "per line; 'show TRACE_ID' renders one trace's span "
                    "tree.",
    )
    trace.add_argument(
        "action", choices=["tail", "show"],
        help="tail: list recent traces; show: render one trace")
    trace.add_argument(
        "trace_id", nargs="?", default=None, metavar="TRACE_ID",
        help="show: the trace id (from tail, a response's "
             "X-Repro-Trace-Id header, or the access log)")
    trace.add_argument(
        "--url", default="http://127.0.0.1:8473", metavar="URL",
        help="server base URL (default: http://127.0.0.1:8473)")
    trace.add_argument(
        "--min-ms", type=float, default=0.0, metavar="MS",
        help="tail: only traces at least this long (default: 0)")
    trace.add_argument(
        "--status", default=None, metavar="CODE",
        help="tail: only traces whose root finished with this status")
    trace.add_argument(
        "--limit", type=int, default=20, metavar="N",
        help="tail: maximum traces to list (default: 20)")

    top = sub.add_parser(
        "top",
        help="live ANSI terminal view of a running serving tier",
        description="Poll GET /metrics/history (and /slo) on a running "
                    "'repro serve' or 'repro fleet' started with "
                    "--history or --slo, and redraw an ANSI frame with "
                    "request-rate/p99/hit sparklines, gauges, SLO burn "
                    "states, and recent events.  --once prints a single "
                    "frame and exits (CI-friendly).",
    )
    top.add_argument(
        "--url", default="http://127.0.0.1:8473", metavar="URL",
        help="server base URL (default: http://127.0.0.1:8473)")
    top.add_argument(
        "--interval", type=float, default=2.0, metavar="S",
        help="seconds between redraws (default: 2)")
    top.add_argument(
        "--window", type=float, default=300.0, metavar="S",
        help="seconds of history per sparkline (default: 300)")
    top.add_argument(
        "--once", action="store_true",
        help="render one frame and exit")
    top.add_argument(
        "--no-color", action="store_true",
        help="disable ANSI colors (frames still render)")

    list_parser = sub.add_parser(
        "list",
        help="show the registered backends",
        description="Show registered libraries, rulebases, filters, "
                    "emitters, spec shorthands, orders, and stores.",
    )
    list_parser.add_argument(
        "what", nargs="?", default="all",
        choices=["all", "libraries", "rulebases", "filters", "emitters",
                 "specs", "orders", "stores", "node_stores",
                 "store_schemes"],
        help="which registry to show (default: all)")
    return parser


# ---------------------------------------------------------------------------
# subcommands
# ---------------------------------------------------------------------------

def _collect_requests(args: argparse.Namespace, command: str,
                      stem_labels: bool = True
                      ) -> Optional[List[SynthesisRequest]]:
    """The --spec/--legend targets as requests, or None after printing
    a usage error (the caller exits 2).

    ``stem_labels``: label LEGEND requests with the source file's stem
    (nice in synth reports).  ``warm`` turns it off: the label is part
    of the store fingerprint, and the serve layer's default label is
    the generator name -- a stem-labeled warm entry would never be hit
    by an HTTP request for the same source."""
    if not args.spec and not args.legend:
        print(f"{PROG} {command}: nothing to do -- pass --spec "
              f"and/or --legend", file=sys.stderr)
        return None
    params: Dict[str, Any] = {}
    for item in args.param:
        key, sep, value = item.partition("=")
        if not sep:
            print(f"{PROG} {command}: --param {item!r} is not K=V",
                  file=sys.stderr)
            return None
        params[key] = _parse_param(value)
    requests: List[SynthesisRequest] = []
    for shorthand in args.spec:
        requests.append(SynthesisRequest.from_spec(
            registry.parse_spec(shorthand), label=shorthand))
    for path in args.legend:
        requests.append(SynthesisRequest.from_legend(
            path.read_text(), generator=args.generator,
            label=path.stem if stem_labels else "", params=params))
    return requests


def _cmd_synth(args: argparse.Namespace) -> int:
    # KeyError is in every backend-resolution catch: RegistryError
    # subclasses it (and carries the registered-name listing), and a
    # third-party factory's own stray KeyError must exit 2 with a
    # message, never escape as a traceback.
    try:
        requests = _collect_requests(args, "synth")
        if requests is None:
            return 2
        emit_names = [name for name in args.emit.split(",") if name]
        for name in emit_names:
            registry.EMITTERS.get(name)  # fail fast on typos

        from repro.api.session import Session

        session = Session(
            library=args.library,
            rulebase=args.rulebase,
            perf_filter=args.perf_filter,
            prune_partial=args.prune_partial,
            max_combinations=args.max_combinations,
            jobs=args.jobs,
            parallel_backend=args.parallel_backend,
            order=args.order,
            batch=args.batch,
            store=args.store,
            node_store=args.node_store,
        )
    except (KeyError, OSError, ValueError) as error:
        print(f"{PROG} synth: {error}", file=sys.stderr)
        return 2

    from repro.core.design_space import SynthesisError
    from repro.legend.errors import LegendError

    try:
        jobs = session.map(requests)
    # ValueError covers the genus elaboration errors (GeneratorError,
    # ParamError subclass it): a bad --generator or --param must report
    # cleanly, not traceback.
    except (SynthesisError, LegendError, ValueError) as error:
        print(f"{PROG} synth: {error}", file=sys.stderr)
        return 1

    blocks: List[str] = []
    for job in jobs:
        blocks.append(job.emit(*emit_names))
    text = "\n\n".join(blocks)
    if args.output is not None:
        try:
            args.output.write_text(text + "\n")
        except OSError as error:
            print(f"{PROG} synth: cannot write {args.output}: {error}",
                  file=sys.stderr)
            return 2
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import DEFAULT_PORT, run_server

    store = None if args.no_store else args.store
    node_store = None if args.no_node_store else args.node_store
    defaults = {
        "library": args.library,
        "rulebase": args.rulebase,
        "filter": args.perf_filter,
        "order": args.order,
        "max_combinations": args.max_combinations,
        "batch": args.batch,
    }
    port = args.port if args.port is not None else DEFAULT_PORT
    try:
        asyncio.run(run_server(
            host=args.host, port=port, store=store, node_store=node_store,
            defaults=defaults, engine_workers=args.workers,
            drain_timeout=args.drain_timeout,
            request_timeout=args.request_timeout,
            breaker_threshold=args.breaker_threshold,
            breaker_reset=args.breaker_reset,
            trace_sample=_trace_sample(args),
            trace_ring=args.trace_ring,
            trace_export=args.trace_export,
            access_log=args.access_log,
            access_log_max_mb=args.access_log_max_mb,
            history=args.history,
            history_interval=args.history_interval,
            history_retention=args.history_retention,
            slo=args.slo,
            slo_file=args.slo_file,
        ))
    except (KeyError, OSError, ValueError) as error:
        print(f"{PROG} serve: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print(f"{PROG} serve: shutting down", file=sys.stderr)
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    import asyncio

    from repro.fleet import FleetError, run_fleet
    from repro.serve import DEFAULT_PORT

    store = None if args.no_store else args.store
    node_store = None if args.no_node_store else args.node_store
    defaults = {
        "library": args.library,
        "rulebase": args.rulebase,
        "filter": args.perf_filter,
        "order": args.order,
        "max_combinations": args.max_combinations,
        "batch": args.batch,
    }
    port = args.port if args.port is not None else DEFAULT_PORT
    if args.workers < 1:
        print(f"{PROG} fleet: --workers must be >= 1", file=sys.stderr)
        return 2
    try:
        asyncio.run(run_fleet(
            host=args.host, port=port, workers=args.workers,
            store=store, node_store=node_store, defaults=defaults,
            engine_workers=args.engine_workers,
            drain_timeout=args.drain_timeout,
            request_timeout=args.request_timeout,
            breaker_threshold=args.breaker_threshold,
            breaker_reset=args.breaker_reset,
            chaos=args.chaos,
            trace_sample=_trace_sample(args),
            trace_ring=args.trace_ring,
            trace_export=args.trace_export,
            access_log=args.access_log,
            access_log_max_mb=args.access_log_max_mb,
            history=args.history,
            history_interval=args.history_interval,
            history_retention=args.history_retention,
            slo=args.slo,
            slo_file=args.slo_file,
        ))
    except (FleetError, KeyError, OSError, ValueError) as error:
        print(f"{PROG} fleet: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print(f"{PROG} fleet: shutting down", file=sys.stderr)
    return 0


def _cmd_warm(args: argparse.Namespace) -> int:
    import time

    try:
        requests = _collect_requests(args, "warm", stem_labels=False)
        if requests is None:
            return 2

        store = registry.create_store(args.store)
        if store is None:
            print(f"{PROG} warm: no result store to warm", file=sys.stderr)
            return 2
        # --nodes publishes per-node option lists alongside the
        # results; without an explicit --node-store they land in the
        # same file, where prune budgets are shared.
        node_designator = args.node_store
        if node_designator is None and args.nodes:
            node_designator = store.path

        from repro.api.session import Session

        session = Session(
            library=args.library,
            rulebase=args.rulebase,
            perf_filter=args.perf_filter,
            max_combinations=args.max_combinations,
            jobs=args.jobs,
            order=args.order,
            batch=args.batch,
            store=store,
            node_store=node_designator,
        )
    except (KeyError, OSError, ValueError) as error:
        print(f"{PROG} warm: {error}", file=sys.stderr)
        return 2

    from repro.core.design_space import SynthesisError
    from repro.legend.errors import LegendError

    failed: List[str] = []
    for request in requests:
        start = time.perf_counter()
        try:
            job = session.synthesize(request)
        except (SynthesisError, LegendError, ValueError) as error:
            print(f"  {request.describe():<32} FAILED: {error}",
                  file=sys.stderr)
            failed.append(request.describe())
            continue
        elapsed = (time.perf_counter() - start) * 1e3
        state = "hit " if job.from_store else ("miss" if session.fingerprint(
            request) else "skip")
        print(f"  {request.describe():<32} {state}  {elapsed:8.1f} ms  "
              f"{len(job)} alternatives")
    info = session.store.info()
    print(f"store {info['path']}: {info['entries']} entries, "
          f"{info['payload_bytes'] / 1e6:.2f} MB")
    if session.node_store is not None:
        nstats = session.node_cache_stats()
        ninfo = session.node_store.info()
        print(f"node cache {ninfo['path']}: {ninfo['entries']} entries "
              f"({nstats['published']} published, {nstats['hits']} hits "
              f"this run)")
    warmed = len(requests) - len(failed)
    print(f"warmed {warmed}/{len(requests)} targets"
          + (f", {len(failed)} failed" if failed else ""))
    if failed:
        # The summary goes to stderr too: a cron/CI caller that only
        # captures stderr still sees *which* targets are cold, and the
        # nonzero exit makes the failure impossible to miss.
        print(f"{PROG} warm: {len(failed)} of {len(requests)} targets "
              f"failed: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


def _cmd_cache_nodes(args: argparse.Namespace, store) -> int:
    """``repro cache nodes <info|list|prune|clear>`` -- maintain the
    per-node option cache that shares the result store's file."""
    action = args.fingerprint or "info"
    if action not in ("info", "list", "prune", "clear"):
        print(f"{PROG} cache nodes: unknown action {action!r} "
              f"(expected info, list, prune, or clear)", file=sys.stderr)
        return 2
    try:
        from repro.nodestore import NodeStore

        nodes = NodeStore(store.path)
    except (KeyError, OSError, ValueError) as error:
        print(f"{PROG} cache nodes: {error}", file=sys.stderr)
        return 2

    if action == "info":
        info = nodes.info()
        print(f"path:     {info['path']}")
        print(f"schema:   {info['schema']}")
        print(f"entries:  {info['entries']}")
        print(f"payload:  {info['payload_bytes'] / 1e6:.2f} MB")
        print(f"hits:     {info['hits']}")
        return 0
    if action == "list":
        entries = nodes.entries()
        if not entries:
            print("(node cache is empty)")
            return 0
        print(f"{'fingerprint':<16} {'size':>8} {'hits':>5}  spec")
        for entry in entries:
            print(f"{entry['fingerprint'][:16]:<16} "
                  f"{entry['size_bytes']:>8} {entry['hits']:>5}  "
                  f"{entry['spec']}")
        return 0
    if action == "prune":
        if args.max_mb is None:
            print(f"{PROG} cache nodes prune: pass --max-mb",
                  file=sys.stderr)
            return 2
        result = nodes.prune(args.max_mb)
        print(f"pruned {result['removed']} entries (results and nodes "
              f"share the budget); {result['remaining']} node entries "
              f"remain ({result['payload_bytes'] / 1e6:.2f} MB total)")
        return 0
    removed = nodes.clear()
    print(f"cleared {removed} node entries")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    try:
        store = registry.create_store(args.store)
    except (KeyError, OSError, ValueError) as error:
        print(f"{PROG} cache: {error}", file=sys.stderr)
        return 2
    if store is None:
        print(f"{PROG} cache: no store selected", file=sys.stderr)
        return 2

    if args.action == "nodes":
        return _cmd_cache_nodes(args, store)

    if args.action == "info":
        info = store.info()
        print(f"path:     {info['path']}")
        print(f"schema:   {info['schema']}")
        print(f"entries:  {info['entries']}")
        print(f"payload:  {info['payload_bytes'] / 1e6:.2f} MB")
        print(f"hits:     {info['hits']}")
        return 0
    if args.action == "list":
        entries = store.entries()
        if not entries:
            print("(store is empty)")
            return 0
        print(f"{'fingerprint':<16} {'size':>8} {'hits':>5}  label")
        for entry in entries:
            print(f"{entry['fingerprint'][:16]:<16} "
                  f"{entry['size_bytes']:>8} {entry['hits']:>5}  "
                  f"{entry['label']}")
        return 0
    if args.action == "show":
        # The persisted artifacts -- label, stats, and the rendered
        # figure-3 report -- without loading any engine code.
        if not args.fingerprint:
            print(f"{PROG} cache show: pass a fingerprint prefix "
                  f"(see 'repro cache list')", file=sys.stderr)
            return 2
        matches = [entry for entry in store.entries()
                   if entry["fingerprint"].startswith(args.fingerprint)]
        if not matches:
            print(f"{PROG} cache show: no entry matches "
                  f"{args.fingerprint!r}", file=sys.stderr)
            return 2
        if len(matches) > 1:
            print(f"{PROG} cache show: {args.fingerprint!r} is ambiguous "
                  f"({len(matches)} entries)", file=sys.stderr)
            return 2
        entry = matches[0]
        payload = store.peek(entry["fingerprint"]) or {}
        print(f"fingerprint: {entry['fingerprint']}")
        print(f"label:       {entry['label']}")
        print(f"hits:        {entry['hits']}")
        print(f"size:        {entry['size_bytes']} bytes")
        timing = payload.get("timing", {})
        print(f"engine:      {payload.get('runtime_seconds', 0.0) * 1e3:.1f} "
              f"ms over {timing.get('spec_nodes', 0)} spec nodes, "
              f"{timing.get('programs_compiled', 0)} compiled programs")
        report = payload.get("report")
        if report:
            print()
            print(report)
        return 0
    if args.action == "prune":
        if args.max_mb is None:
            print(f"{PROG} cache prune: pass --max-mb", file=sys.stderr)
            return 2
        result = store.prune(args.max_mb)
        print(f"pruned {result['removed']} entries; {result['remaining']} "
              f"remain ({result['payload_bytes'] / 1e6:.2f} MB)")
        return 0
    if args.action == "clear":
        removed = store.clear()
        print(f"cleared {removed} entries")
        return 0
    return 2


def _cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace tail|show`` against a running server's
    ``/debug/traces`` (stdlib http.client; no engine imports)."""
    import http.client
    import json as json_module
    import urllib.parse as parse

    from repro.obs.trace import format_trace

    parsed = parse.urlsplit(args.url if "//" in args.url
                            else f"http://{args.url}")
    host = parsed.hostname or "127.0.0.1"
    port = parsed.port or 8473

    query: Dict[str, Any] = {}
    if args.action == "show":
        if not args.trace_id:
            print(f"{PROG} trace show: pass a TRACE_ID "
                  f"(see 'repro trace tail')", file=sys.stderr)
            return 2
        query["trace_id"] = args.trace_id
        query["limit"] = 1
    else:
        if args.min_ms:
            query["min_ms"] = args.min_ms
        if args.status is not None:
            query["status"] = args.status
        query["limit"] = args.limit
    path = "/debug/traces"
    if query:
        path += "?" + parse.urlencode(query)

    try:
        conn = http.client.HTTPConnection(host, port, timeout=10.0)
        conn.request("GET", path)
        response = conn.getresponse()
        body = response.read()
        conn.close()
    except (OSError, http.client.HTTPException) as error:
        print(f"{PROG} trace: cannot reach {host}:{port}: {error}",
              file=sys.stderr)
        return 2
    if response.status != 200:
        print(f"{PROG} trace: server answered {response.status}: "
              f"{body.decode('utf-8', errors='replace')}", file=sys.stderr)
        return 2
    traces = json_module.loads(body).get("traces", [])

    if args.action == "show":
        if not traces:
            print(f"{PROG} trace show: no trace {args.trace_id!r} in the "
                  f"server's ring (it may have been evicted; raise "
                  f"--trace-ring on the server)", file=sys.stderr)
            return 1
        print(format_trace(traces[0]))
        return 0
    if not traces:
        print("(no traces recorded; start the server with --trace or "
              "--trace-sample and send a /synthesize request)")
        return 0
    for trace in traces:
        spans = trace.get("spans", [])
        print(f"{trace.get('trace_id', ''):<34} "
              f"{str(trace.get('status')):>5}  "
              f"{trace.get('duration_ms') or 0.0:10.2f} ms  "
              f"{len(spans):3d} spans  {trace.get('root') or ''}")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """``repro top`` — ANSI terminal view over ``/metrics/history``."""
    from repro.obs.top import run_top

    url = args.url if "//" in args.url else f"http://{args.url}"
    return run_top(url, interval=args.interval, once=args.once,
                   window=args.window, color=not args.no_color)


def _cmd_list(args: argparse.Namespace) -> int:
    sections = {
        "libraries": registry.LIBRARIES,
        "rulebases": registry.RULEBASES,
        "filters": registry.FILTERS,
        "emitters": registry.EMITTERS,
        "specs": registry.SPECS,
        "orders": registry.ORDERS,
        "stores": registry.STORES,
        "node_stores": registry.NODE_STORES,
        "store_schemes": registry.STORE_SCHEMES,
    }
    selected = sections if args.what == "all" else {args.what: sections[args.what]}
    blocks = []
    for title, reg in selected.items():
        lines = [f"{title}:"]
        for name in reg.names():
            description = reg.describe(name)
            lines.append(f"  {name:<16} {description}".rstrip())
        blocks.append("\n".join(lines))
    print("\n\n".join(blocks))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 0
    if args.command == "synth":
        return _cmd_synth(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "fleet":
        return _cmd_fleet(args)
    if args.command == "warm":
        return _cmd_warm(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "top":
        return _cmd_top(args)
    if args.command == "list":
        return _cmd_list(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
