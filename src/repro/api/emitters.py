"""Built-in output emitters.

An emitter renders one :class:`~repro.api.requests.SynthesisJob` as
text; emitters are selected by name through
:data:`repro.api.registry.EMITTERS` (``job.emit("report", "vhdl")``,
``repro synth --emit vhdl,report``).  Registering a new name is all it
takes to plug a custom format into both the API and the CLI.
"""

from __future__ import annotations

import json
from typing import List, Sequence, Tuple

from repro.api.registry import EMITTERS
from repro.api.requests import SynthesisJob


# ---------------------------------------------------------------------------
# ASCII scatter plot (shared with examples/alu_design_space.py)
# ---------------------------------------------------------------------------

def ascii_plot(points: Sequence[Tuple[float, ...]], width: int = 60,
               height: int = 16) -> str:
    """Delay-vs-area scatter, mirroring Figure 3's axes.

    Accepts ``(area, delay, ...)`` tuples (extra trailing fields such
    as the Figure-3 percentage deltas are ignored) and degrades
    gracefully on degenerate inputs: an empty list renders a note
    instead of raising on ``min()``, and a single point (zero-width
    axis ranges) collapses onto one grid cell.
    """
    if not points:
        return "(no design points to plot)"
    areas = [p[0] for p in points]
    delays = [p[1] for p in points]
    a_lo, a_hi = min(areas), max(areas)
    d_lo, d_hi = min(delays), max(delays)
    grid = [[" "] * (width + 1) for _ in range(height + 1)]
    for point in points:
        area, delay = point[0], point[1]
        x = int((area - a_lo) / (a_hi - a_lo or 1) * width)
        y = int((delay - d_lo) / (d_hi - d_lo or 1) * height)
        grid[height - y][x] = "*"
    lines = [f"{d_hi:8.1f} ns |" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 11 + "|" + "".join(row))
    if height >= 1:
        lines.append(f"{d_lo:8.1f} ns |" + "".join(grid[-1]))
    lines.append(" " * 12 + "-" * (width + 1))
    lines.append(f"{'':12}{a_lo:<10.0f}{'area (gates)':^38}{a_hi:>10.0f}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Registered emitters
# ---------------------------------------------------------------------------

@EMITTERS.register("report",
                   description="Figure-3 style area/delay table")
def emit_report(job: SynthesisJob) -> str:
    return job.report()


@EMITTERS.register("plot",
                   description="ASCII delay-vs-area scatter of the "
                               "surviving points")
def emit_plot(job: SynthesisJob) -> str:
    return ascii_plot(job.points())


@EMITTERS.register("vhdl",
                   description="structural VHDL (smallest alternative; "
                               "GENUS netlist for netlist/HLS jobs)")
def emit_vhdl(job: SynthesisJob) -> str:
    if job.spec is not None:
        return job.vhdl()
    # Netlist-level jobs have no single root tree; emit the structural
    # VHDL of the GENUS input netlist instead.
    from repro.vhdl import netlist_vhdl

    netlist = job.request.netlist
    if netlist is None and job.hls is not None:
        netlist = job.hls.datapath.netlist
    if netlist is None:
        raise ValueError("job has neither a root spec nor a netlist")
    return netlist_vhdl(netlist)


@EMITTERS.register("behavioral_vhdl",
                   description="behavioral VHDL model of the root spec")
def emit_behavioral_vhdl(job: SynthesisJob) -> str:
    return job.behavioral_vhdl()


@EMITTERS.register("json",
                   description="machine-readable alternatives + stats")
def emit_json(job: SynthesisJob) -> str:
    payload = {
        "request": {"kind": job.request.kind, "label": job.request.label},
        "spec": str(job.spec) if job.spec is not None else None,
        "alternatives": [
            {
                "index": alt.index,
                "area": alt.area,
                "delay": alt.delay,
                "d_area_pct": round(d_area, 4),
                "d_delay_pct": round(d_delay, 4),
            }
            for alt, (_, _, d_area, d_delay) in zip(job.alternatives,
                                                    job.points())
        ],
        "space": job.stats,
        "runtime_seconds": job.runtime_seconds,
        # Wall-clock engine-phase breakdown: like runtime_seconds it is
        # timing, not behavior -- byte-compare tests normalize it away
        # alongside runtime_seconds.
        "phases": job.phases,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


@EMITTERS.register("cells",
                   description="leaf-cell usage of the smallest and "
                               "fastest alternatives")
def emit_cells(job: SynthesisJob) -> str:
    from repro.core.report import cell_usage_report

    blocks: List[str] = []
    smallest, fastest = job.smallest(), job.fastest()
    pairs = [("smallest", smallest)]
    if fastest is not smallest:
        pairs.append(("fastest", fastest))
    for label, alt in pairs:
        blocks.append(f"[{label}] {alt.describe()}\n{cell_usage_report(alt)}")
    return "\n\n".join(blocks)
