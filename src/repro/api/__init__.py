"""``repro.api`` -- the supported entry point to the whole flow.

The Dutt & Kipps pipeline (LEGEND generator descriptions and GENUS
specs into DTAS expansion, S1/S2 filtering, and VHDL/report emission)
is driven through one object: a :class:`Session` binds a cell library,
a rulebase policy, and a performance filter, owns every engine cache,
and amortizes them across jobs.  Inputs arrive as typed
:class:`SynthesisRequest` objects (a GENUS spec, a netlist, LEGEND
source text, or an HLS behavioral program); results come back as
:class:`SynthesisJob` objects carrying alternatives, Pareto points,
reports, and lazy VHDL.

Quickstart::

    from repro.api import Session

    session = Session(library="lsi_logic")
    job = session.synthesize("alu:64")        # or a ComponentSpec, ...
    print(job.report())
    print(job.vhdl())                          # smallest alternative

Batch runs share the session's design space and compiled-timing
caches::

    jobs = session.map(["adder:16", "adder:32", "alu:16"])

Backends are chosen by name and extended through
:mod:`repro.api.registry`; the same names drive the CLI
(``python -m repro synth --spec alu:64 --library lsi_logic
--emit vhdl,report``).
"""

from repro.api.registry import (
    EMITTERS,
    FILTERS,
    LIBRARIES,
    NODE_STORES,
    ORDERS,
    RULEBASES,
    SPECS,
    STORES,
    Registry,
    RegistryError,
    create_node_store,
    create_store,
    parse_spec,
)
from repro.api.requests import SynthesisJob, SynthesisRequest
from repro.api.session import Session
from repro.api.emitters import ascii_plot

__all__ = [
    "EMITTERS",
    "FILTERS",
    "LIBRARIES",
    "NODE_STORES",
    "ORDERS",
    "RULEBASES",
    "SPECS",
    "STORES",
    "Registry",
    "RegistryError",
    "Session",
    "SynthesisJob",
    "SynthesisRequest",
    "ascii_plot",
    "create_node_store",
    "create_store",
    "parse_spec",
]
