"""Name-based registries for the pluggable pieces of the flow.

The session layer selects backends by *string*: cell libraries
(``lsi_logic``, ``vendor2``), rulebase policies (``auto``, ``standard``,
``lola``), performance filters (``pareto``, ``tradeoff:0.05``), output
emitters (``report``, ``vhdl``, ``json``), and spec shorthands
(``alu:64``).  Third-party code extends the system by registering its
own factory under a new name -- no session or CLI change required::

    from repro.api import registry

    @registry.LIBRARIES.register("acme3")
    def _acme3():
        return load_databook(ACME3_SOURCE)

Every registry maps a name to a zero-or-more-argument factory; the
conventions per registry are documented on the module-level instances
below.
"""

from __future__ import annotations

import difflib
import threading
from typing import Any, Callable, Dict, Iterator, List, Optional


class RegistryError(KeyError):
    """Unknown or duplicate registry name."""

    def __str__(self) -> str:
        # KeyError.__str__ renders the message repr-quoted; undo that.
        return str(self.args[0]) if self.args else ""


class Registry:
    """A string -> factory table with decorator registration.

    ``kind`` names what is being registered (used in error messages);
    ``signature`` documents the factory calling convention.
    """

    def __init__(self, kind: str, signature: str = "()") -> None:
        self.kind = kind
        self.signature = signature
        self._factories: Dict[str, Callable] = {}
        self._descriptions: Dict[str, str] = {}
        # Registration is guarded: the serve layer imports plugin-style
        # registrations from executor threads, and concurrent decorator
        # registration must neither corrupt the tables nor let two
        # threads silently claim the same name.
        self._lock = threading.Lock()

    # -- registration --------------------------------------------------
    def register(
        self,
        name: str,
        factory: Optional[Callable] = None,
        *,
        description: str = "",
        replace: bool = False,
    ):
        """Register ``factory`` under ``name``.

        Usable directly (``reg.register("x", fn)``) or as a decorator
        (``@reg.register("x")``).  Names are case-insensitive and
        ``-``/``_`` are interchangeable.
        """
        key = self._canon(name)

        def _install(fn: Callable) -> Callable:
            with self._lock:
                if key in self._factories and not replace:
                    raise RegistryError(
                        f"{self.kind} {name!r} is already registered "
                        f"(pass replace=True to override)"
                    )
                self._factories[key] = fn
                doc = (fn.__doc__ or "").strip()
                self._descriptions[key] = description or (
                    doc.splitlines()[0] if doc else "")
            return fn

        if factory is None:
            return _install
        return _install(factory)

    def unregister(self, name: str) -> None:
        key = self._canon(name)
        with self._lock:
            self._factories.pop(key, None)
            self._descriptions.pop(key, None)

    # -- lookup --------------------------------------------------------
    # Reads take the same lock as registration: names()/iteration must
    # never see a dict mid-mutation from another thread (sorted() over
    # a changing dict raises), and a get concurrent with a replace must
    # return either the old or the new factory, never crash.
    def get(self, name: str) -> Callable:
        """The raw factory registered under ``name``."""
        key = self._canon(name)
        with self._lock:
            factory = self._factories.get(key)
        if factory is None:
            raise RegistryError(self._unknown_message(name))
        return factory

    def create(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke the factory registered under ``name``."""
        return self.get(name)(*args, **kwargs)

    def describe(self, name: str) -> str:
        with self._lock:
            return self._descriptions.get(self._canon(name), "")

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        key = self._canon(name)
        with self._lock:
            return key in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        with self._lock:
            return len(self._factories)

    def __repr__(self) -> str:
        return f"Registry({self.kind}: {', '.join(self.names()) or 'empty'})"

    # -- helpers -------------------------------------------------------
    @staticmethod
    def _canon(name: str) -> str:
        return name.strip().lower().replace("-", "_")

    def _unknown_message(self, name: str) -> str:
        known = self.names()
        message = f"unknown {self.kind} {name!r}; known: {', '.join(known)}"
        close = difflib.get_close_matches(self._canon(name), known, n=1)
        if close:
            message += f" (did you mean {close[0]!r}?)"
        return message


# ---------------------------------------------------------------------------
# The registries
# ---------------------------------------------------------------------------

#: Cell libraries.  Factory convention: ``() -> CellLibrary``.
LIBRARIES = Registry("library", "() -> CellLibrary")

#: Rulebase policies.  Factory convention:
#: ``(library: CellLibrary) -> RuleBase`` -- the policy sees the target
#: library so it can add library-specific rules.
RULEBASES = Registry("rulebase", "(library) -> RuleBase")

#: Performance filters (search control S2).  Factory convention:
#: ``(arg: Optional[str]) -> PerformanceFilter`` where ``arg`` is the
#: text after ``:`` in specs like ``tradeoff:0.05`` (None when absent).
FILTERS = Registry("filter", "(arg: str | None) -> PerformanceFilter")

#: Output emitters.  Factory convention: ``(job: SynthesisJob) -> str``
#: (the factory *is* the emitter; it renders one job as text).
EMITTERS = Registry("emitter", "(job) -> str")

#: Component-spec shorthands.  Factory convention:
#: ``(width: int) -> ComponentSpec`` for names like ``alu:64``.
SPECS = Registry("spec", "(width: int) -> ComponentSpec")

#: Result stores (persistent, content-addressed result caches; see
#: :mod:`repro.store`).  Factory convention: ``() -> ResultStore``.
#: Built-ins: ``default`` (the on-disk store at
#: ``$REPRO_STORE``/``~/.cache/repro/store.sqlite``) and ``memory``
#: (ephemeral per-process SQLite, for tests and opt-out serving).
STORES = Registry("store", "() -> ResultStore")

#: Node stores (persistent per-node option caches for subtree-level
#: work sharing; see :mod:`repro.nodestore`).  Factory convention:
#: ``() -> NodeStore``.  Built-ins: ``default`` (the ``nodes`` table in
#: the default result-store file) and ``memory`` (ephemeral
#: per-process SQLite, for tests and opt-out serving).
NODE_STORES = Registry("node store", "() -> NodeStore")

#: Store backend URL schemes (see :mod:`repro.store.backend`).  One
#: registry serves result stores *and* node stores: the factory
#: convention is ``(rest: str, url: str, kind: str) -> backend`` where
#: ``rest`` is everything after ``scheme:``, ``url`` is the full
#: designator (for error messages), and ``kind`` is ``"results"`` or
#: ``"nodes"`` -- so one URL (``sqlite:///path``) designates whichever
#: cache the call site wants, and both kinds can co-locate.  Built-ins:
#: ``sqlite`` (the default file backend) and ``memory`` (ephemeral).
#: Third-party backends register a scheme here and become usable as
#: ``--store scheme://...`` everywhere with no engine changes.
STORE_SCHEMES = Registry("store URL scheme",
                         "(rest, url, kind: 'results'|'nodes') -> backend")

#: S1 enumeration orders for the streaming combiner.  Factory
#: convention: ``() -> Optional[callable]`` returning a function that
#: reorders one option list (``None`` = keep list order).  Third-party
#: orders registered here are usable as ``Session(order="name")`` and
#: ``--order name`` exactly like built-ins.  Names resolve at this
#: layer (:func:`create_order`); the core engine itself accepts order
#: *callables* plus the built-in names only.
ORDERS = Registry("order", "() -> Optional[callable]")


# ---------------------------------------------------------------------------
# Built-in backends
# ---------------------------------------------------------------------------

def _register_builtins() -> None:
    from repro.core.filters import (
        KeepAllFilter,
        ParetoFilter,
        TopKFilter,
        TradeoffFilter,
    )
    from repro.core.rulebase import standard_rulebase
    from repro.core.specs import (
        adder_spec,
        alu_spec,
        comparator_spec,
        counter_spec,
        mux_spec,
        register_spec,
    )
    from repro.techlib import lsi_logic_library, vendor2_library

    LIBRARIES.register(
        "lsi_logic", lsi_logic_library,
        description="30-cell LSI Logic 1.5-micron subset (the paper's)")
    LIBRARIES.register(
        "vendor2", vendor2_library,
        description="ACME 1.0-micron library (LOLA retargeting target)")

    def _auto_rulebase(library):
        rulebase = standard_rulebase()
        if library.name.startswith("LSI"):
            from repro.core.library_rules import lsi_rules

            rulebase.extend(lsi_rules())
        return rulebase

    def _standard_rulebase(library):
        return standard_rulebase()

    def _lola_rulebase(library):
        from repro.lola.assistant import adapt_rulebase

        rulebase = standard_rulebase()
        adapt_rulebase(rulebase, library)
        return rulebase

    RULEBASES.register(
        "auto", _auto_rulebase,
        description="standard rules + the LSI-specific nine on LSI libraries")
    RULEBASES.register(
        "standard", _standard_rulebase,
        description="the generic decomposition rulebase only")
    RULEBASES.register(
        "lola", _lola_rulebase,
        description="standard rules + LOLA-adapted library-specific rules")

    FILTERS.register(
        "pareto", lambda arg=None: ParetoFilter(),
        description="area/delay Pareto frontier")
    FILTERS.register(
        "tradeoff", lambda arg=None: TradeoffFilter(
            float(arg) if arg is not None else 0.05),
        description="frontier thinned to >=arg fractional delay gains "
                    "(tradeoff:0.05)")
    FILTERS.register(
        "top_k", lambda arg=None: TopKFilter(int(arg) if arg is not None else 8),
        description="at most k frontier points, extremes first (top_k:4)")
    FILTERS.register(
        "keep_all", lambda arg=None: KeepAllFilter(),
        description="no pruning (ablation; expect blow-up)")

    from repro.core.configs import adaptive_order, pareto_rank_order

    ORDERS.register(
        "lex", lambda: None,
        description="enumeration order of the option lists (seed "
                    "semantics; byte-stable results)")
    ORDERS.register(
        "frontier", lambda: pareto_rank_order,
        description="Pareto-rank + two-ended sweep seeding, so "
                    "max_combinations keeps the best designs")
    ORDERS.register(
        "auto", lambda: adaptive_order,
        description="cap-adaptive: lex prefix + frontier tail, so tiny "
                    "caps keep the knee region and the delay corner")

    def _default_store():
        from repro.store import ResultStore

        return ResultStore()

    def _memory_store():
        from repro.store import ResultStore

        return ResultStore(":memory:")

    STORES.register(
        "default", _default_store,
        description="on-disk store at $REPRO_STORE or "
                    "~/.cache/repro/store.sqlite")
    STORES.register(
        "memory", _memory_store,
        description="ephemeral in-process SQLite store (tests, opt-out)")

    def _default_node_store():
        from repro.nodestore import NodeStore

        return NodeStore()

    def _memory_node_store():
        from repro.nodestore import NodeStore

        return NodeStore(":memory:")

    NODE_STORES.register(
        "default", _default_node_store,
        description="nodes table co-located with the default result "
                    "store file")
    NODE_STORES.register(
        "memory", _memory_node_store,
        description="ephemeral in-process SQLite node cache (tests)")

    def _pop_busy_timeout(params, url):
        text = params.pop("busy_timeout_ms", None)
        if text is None:
            return 10_000
        try:
            value = int(text)
        except ValueError:
            raise ValueError(
                f"store URL {url!r}: busy_timeout_ms must be an "
                f"integer number of milliseconds, got {text!r}") from None
        if value < 1:
            raise ValueError(
                f"store URL {url!r}: busy_timeout_ms must be >= 1, "
                f"got {value}")
        return value

    def _sqlite_scheme(rest, url, kind):
        from repro.store import ResultStore, split_url_query, sqlite_url_path

        try:
            rest, params = split_url_query(rest, url)
            path = sqlite_url_path(rest, url)
            busy_timeout_ms = _pop_busy_timeout(params, url)
            if params:
                raise ValueError(
                    f"store URL {url!r} has unknown query parameter(s): "
                    f"{', '.join(sorted(params))} (known: busy_timeout_ms)")
        except ValueError as error:
            raise RegistryError(str(error)) from None
        if kind == "nodes":
            from repro.nodestore import NodeStore

            return NodeStore(path, busy_timeout_ms=busy_timeout_ms)
        return ResultStore(path, busy_timeout_ms=busy_timeout_ms)

    def _memory_scheme(rest, url, kind):
        if rest not in ("", "//"):
            raise RegistryError(
                f"store URL {url!r} is malformed: the memory scheme "
                f"takes no path (use 'memory:')")
        if kind == "nodes":
            from repro.nodestore import NodeStore

            return NodeStore(":memory:")
        from repro.store import ResultStore

        return ResultStore(":memory:")

    def _fault_sqlite_scheme(rest, url, kind):
        from repro.resilience import (
            FaultInjectingNodeStore,
            FaultInjectingStore,
            FaultPolicy,
        )
        from repro.store import ResultStore, split_url_query, sqlite_url_path

        try:
            rest, params = split_url_query(rest, url)
            path = sqlite_url_path(rest, url)
            busy_timeout_ms = _pop_busy_timeout(params, url)
            policy = FaultPolicy.from_params(params, url)
        except ValueError as error:
            raise RegistryError(str(error)) from None
        if kind == "nodes":
            from repro.nodestore import NodeStore

            return FaultInjectingNodeStore(
                NodeStore(path, busy_timeout_ms=busy_timeout_ms), policy)
        return FaultInjectingStore(
            ResultStore(path, busy_timeout_ms=busy_timeout_ms), policy)

    def _fault_memory_scheme(rest, url, kind):
        from repro.resilience import (
            FaultInjectingNodeStore,
            FaultInjectingStore,
            FaultPolicy,
        )
        from repro.store import ResultStore, split_url_query

        try:
            rest, params = split_url_query(rest, url)
            if rest not in ("", "//"):
                raise ValueError(
                    f"store URL {url!r} is malformed: the fault+memory "
                    f"scheme takes no path (use 'fault+memory:?...')")
            policy = FaultPolicy.from_params(params, url)
        except ValueError as error:
            raise RegistryError(str(error)) from None
        if kind == "nodes":
            from repro.nodestore import NodeStore

            return FaultInjectingNodeStore(NodeStore(":memory:"), policy)
        return FaultInjectingStore(ResultStore(":memory:"), policy)

    STORE_SCHEMES.register(
        "sqlite", _sqlite_scheme,
        description="one SQLite file (sqlite:///abs/path.sqlite or "
                    "sqlite://relative.sqlite?busy_timeout_ms=500); the "
                    "default backend")
    STORE_SCHEMES.register(
        "memory", _memory_scheme,
        description="ephemeral per-process SQLite (memory:)")
    STORE_SCHEMES.register(
        "fault+sqlite", _fault_sqlite_scheme,
        description="SQLite behind deterministic fault injection "
                    "(fault+sqlite://path?fail_rate=&latency_ms=&"
                    "corrupt_rate=&seed=&fail_first=)")
    STORE_SCHEMES.register(
        "fault+memory", _fault_memory_scheme,
        description="ephemeral SQLite behind fault injection "
                    "(fault+memory:?fail_rate=...)")

    SPECS.register("adder", adder_spec, description="n-bit binary adder")
    SPECS.register("alu", alu_spec,
                   description="n-bit 16-function ALU (paper Figure 3)")
    SPECS.register("counter", counter_spec,
                   description="n-bit up/down/load counter with enable")
    SPECS.register("register", register_spec, description="n-bit D register")
    SPECS.register("comparator", comparator_spec,
                   description="n-bit magnitude comparator (EQ LT GT)")
    SPECS.register("mux", lambda width: mux_spec(4, width),
                   description="4-to-1 multiplexer of the given data width")

    # Emitters live in repro.api.emitters; importing it registers them.
    from repro.api import emitters as _emitters  # noqa: F401


def create_filter(spec: Any):
    """Resolve a filter designator: an object passes through, a string
    like ``"tradeoff:0.05"`` is split on ``:`` and looked up."""
    if spec is None:
        return FILTERS.create("pareto", None)
    if isinstance(spec, str):
        name, _, arg = spec.partition(":")
        return FILTERS.create(name, arg or None)
    return spec


def create_library(spec: Any):
    """Resolve a library designator: a CellLibrary passes through, a
    string is looked up in :data:`LIBRARIES`."""
    if isinstance(spec, str):
        return LIBRARIES.create(spec)
    return spec


def create_rulebase(spec: Any, library) -> Any:
    """Resolve a rulebase designator against the target ``library``:
    None means the ``auto`` policy, a string names a policy, and a
    RuleBase object passes through."""
    if spec is None:
        spec = "auto"
    if isinstance(spec, str):
        return RULEBASES.create(spec, library)
    return spec


def _create_from_url(spec: str, kind: str, names: "Registry"):
    """Resolve a URL-style store designator through
    :data:`STORE_SCHEMES`, or return ``None`` when ``spec`` is not a
    URL at all (a bare name or path -- the caller's business).

    An *unknown scheme* and a *malformed URL* both raise
    :class:`RegistryError` listing the registered schemes and names --
    the same exit-2 contract bare-name typos get from the CLI."""
    from repro.store import parse_store_url

    url = parse_store_url(spec)
    if url is None:
        return None
    scheme, rest = url
    try:
        factory = STORE_SCHEMES.get(scheme)
    except RegistryError:
        raise RegistryError(
            f"unknown {names.kind} URL scheme {scheme!r} in {spec!r}; "
            f"registered schemes: {', '.join(STORE_SCHEMES.names())} "
            f"(registered {names.kind} names: {', '.join(names.names())})"
        ) from None
    return factory(rest, spec, kind)


def create_store(spec: Any):
    """Resolve a result-store designator: ``None`` means no store, a
    ``StoreBackend`` passes through, a registered name (``"default"``,
    ``"memory"``) is looked up in :data:`STORES`, a URL
    (``sqlite:///path``, ``memory:``) resolves through
    :data:`STORE_SCHEMES`, and any other string/path (or ``True`` for
    the default location) opens that SQLite file directly."""
    if spec is None:
        return None
    if isinstance(spec, str):
        backend = _create_from_url(spec, "results", STORES)
        if backend is not None:
            return backend
        if spec in STORES:
            return STORES.create(spec)
    from repro.store import open_store

    return open_store(spec)


def create_node_store(spec: Any):
    """Resolve a node-store designator: ``None`` means no node cache, a
    ``NodeStoreBackend`` passes through, a registered name
    (``"default"``, ``"memory"``) is looked up in :data:`NODE_STORES`,
    a URL (``sqlite:///path``, ``memory:``) resolves through
    :data:`STORE_SCHEMES`, and any other string/path (or ``True`` for
    the default location) opens the ``nodes`` table in that SQLite
    file directly -- which may be, and by default is, the same file a
    :class:`~repro.store.ResultStore` uses."""
    if spec is None:
        return None
    if isinstance(spec, str):
        backend = _create_from_url(spec, "nodes", NODE_STORES)
        if backend is not None:
            return backend
        if spec in NODE_STORES:
            return NODE_STORES.create(spec)
    from repro.nodestore import open_node_store

    return open_node_store(spec)


def create_order(spec: Any):
    """Resolve an enumeration-order designator: None passes through
    (engine default), a string is looked up in :data:`ORDERS`, and a
    callable passes through as the order function itself."""
    if spec is None or callable(spec):
        return spec
    return ORDERS.create(spec)


def parse_spec(text: str):
    """Parse a ``name:width`` shorthand (``alu:64``) into a
    :class:`~repro.core.specs.ComponentSpec` via :data:`SPECS`."""
    name, sep, width_text = text.partition(":")
    if not sep:
        raise RegistryError(
            f"spec shorthand {text!r} must look like 'name:width' "
            f"(e.g. 'alu:64'); known names: {', '.join(SPECS.names())}"
        )
    try:
        width = int(width_text)
    except ValueError:
        raise RegistryError(
            f"spec shorthand {text!r}: width {width_text!r} is not an integer"
        ) from None
    if width < 1:
        raise RegistryError(f"spec shorthand {text!r}: width must be >= 1")
    return SPECS.create(name, width)


_register_builtins()
