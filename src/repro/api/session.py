"""The session layer: one object that owns the whole flow.

A :class:`Session` binds a cell library, a rulebase policy, and a
performance-filter policy, and owns every process-level cache the
engine uses -- the expanded :class:`~repro.core.design_space.DesignSpace`
(spec nodes, filtered configurations), the compiled timing programs,
cached rule applications, and cell matchings keyed per library.  One
session amortizes those caches across many jobs: ``synthesize`` runs a
single request, ``map`` runs a batch through the same design space, so
later requests reuse every subtree earlier ones expanded.

Backends are selected by name through :mod:`repro.api.registry`::

    from repro.api import Session

    session = Session(library="lsi_logic", perf_filter="tradeoff:0.05")
    job = session.synthesize("alu:64")
    print(job.report())
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.api.registry import (
    create_filter,
    create_library,
    create_node_store,
    create_order,
    create_rulebase,
    create_store,
)
from repro.api.requests import SynthesisJob, SynthesisRequest
from repro.core.design_space import DesignSpace, DesignTree
from repro.core.rules import Rule, RuleBase
from repro.core.specs import ComponentSpec
from repro.core.synthesizer import DesignAlternative, SynthesisResult
from repro.netlist.netlist import Netlist

#: Anything ``synthesize``/``map`` accept as a target.
RequestLike = Union[SynthesisRequest, ComponentSpec, Netlist, str, Any]


class Session:
    """A configured synthesis workbench.

    Parameters
    ----------
    library:
        The target cell library: a ``CellLibrary`` or a registered name
        (``"lsi_logic"``, ``"vendor2"``).
    rulebase:
        The decomposition rules: a ``RuleBase``, a registered policy
        name (``"auto"``, ``"standard"``, ``"lola"``), or None for the
        ``auto`` policy (standard rules, plus the nine LSI-specific
        rules when the library is the LSI subset).
    perf_filter:
        Search control (S2): a filter object or a designator string
        such as ``"pareto"``, ``"tradeoff:0.05"``, ``"top_k:4"``,
        ``"keep_all"``.
    extra_rules:
        Additional :class:`~repro.core.rules.Rule` objects appended to
        the resolved rulebase.
    validate:
        Validate rule-produced netlists during expansion.
    prune_partial:
        Opt-in dominance pre-pruning before the S1 cross product (see
        :class:`~repro.core.design_space.DesignSpace`).
    max_combinations:
        Per-node cap on the streamed S1 cross product; None keeps the
        engine default.
    jobs:
        Worker count for parallel subtree evaluation (1 = sequential).
    parallel_backend:
        ``"thread"`` (default) or ``"process"`` (fork-based real
        parallelism; degrades to threads where fork is unavailable).
    order:
        S1 enumeration order: a registered name (``"lex"`` default,
        ``"frontier"``), or a callable reordering one option list.
        ``"frontier"`` makes ``max_combinations`` keep the best
        designs instead of the lexicographically first.
    batch:
        Block size for vectorized S1 combination costing (None keeps
        the engine default; ``1`` forces the scalar per-combination
        path).  Results are bit-identical for every value, so ``batch``
        does not enter store fingerprints or node-cache space keys.
    store:
        Persistent result store (see :mod:`repro.store`): ``None``
        (default) disables persistence, a registered name
        (``"default"``, ``"memory"``), a path, ``True`` (the default
        location), or a ``ResultStore``.  With a store, every
        content-addressable request is first looked up by its
        canonical fingerprint -- a hit skips expansion and evaluation
        entirely and returns re-interned canonical configurations --
        and every computed result is written back for the next
        process.
    node_store:
        Persistent *per-node* option cache (see :mod:`repro.nodestore`):
        same designators as ``store`` (None / name / path / ``True`` /
        a ``NodeStore``).  Where the result store shares whole
        requests, the node cache shares expanded *subtrees*: during
        evaluation every decomposition node is probed before its S1
        cross product runs and published after, so a different request
        over an overlapping subgraph -- or a fork worker evaluating a
        sibling partition -- reuses this one's leaves.  Results are
        byte-identical with the cache on, off, or half-warm.
    """

    def __init__(
        self,
        library: Any = "lsi_logic",
        rulebase: Any = None,
        perf_filter: Any = None,
        *,
        extra_rules: Sequence[Rule] = (),
        validate: bool = True,
        prune_partial: bool = False,
        max_combinations: Optional[int] = None,
        jobs: int = 1,
        parallel_backend: str = "thread",
        order: Any = None,
        batch: Optional[int] = None,
        store: Any = None,
        node_store: Any = None,
    ) -> None:
        self.library = create_library(library)
        resolved: RuleBase = create_rulebase(rulebase, self.library)
        for rule in extra_rules:
            resolved.add(rule)
        self.rulebase = resolved
        self.perf_filter = create_filter(perf_filter)
        self.space = DesignSpace(
            self.rulebase,
            self.library,
            self.perf_filter,
            validate=validate,
            prune_partial=prune_partial,
            jobs=jobs,
            parallel_backend=parallel_backend,
            order=create_order(order),
            batch=batch,
        )
        if max_combinations is not None:
            self.space.max_combinations = max_combinations
        self._legend_libraries: Dict[str, Any] = {}
        self.jobs_run = 0
        #: The raw order designator (name or None), kept for the store
        #: fingerprint -- a custom callable makes requests uncacheable.
        self.order_designator = order
        self.store = create_store(store)
        self._engine_digest: Optional[str] = None
        #: Serving counters: store lookups answered warm / answered by
        #: running the engine / engine runs (incl. uncacheable ones).
        self.store_hits = 0
        self.store_misses = 0
        self.evaluations = 0
        self.node_store = create_node_store(node_store)
        if self.node_store is not None:
            from repro.nodestore import session_space_key

            # A None key (custom order callable, opaque filter) leaves
            # the cache detached: caching degrades, synthesis does not.
            self.space.attach_node_store(self.node_store,
                                         session_space_key(self))

    # ------------------------------------------------------------------
    # synthesis
    # ------------------------------------------------------------------
    def synthesize(self, target: RequestLike, *,
                   fingerprint: Optional[str] = None) -> SynthesisJob:
        """Run one request (or raw target; see
        :meth:`SynthesisRequest.coerce`) through the design space.

        With a :attr:`store`, content-addressable requests are first
        looked up by fingerprint: a hit is served without expansion or
        evaluation (``job.from_store`` is True and its configurations
        are the canonical interned instances); a miss runs the engine
        and persists the result for the next process.  ``fingerprint``
        lets a caller that already computed :meth:`fingerprint` for
        this exact request (the serve layer, for coalescing) skip the
        recomputation; passing a wrong one corrupts the store."""
        request = SynthesisRequest.coerce(target)
        if self.store is None:
            fingerprint = None  # nothing to look up or persist in
        elif fingerprint is None:
            fingerprint = self.fingerprint(request)
        if fingerprint is not None:
            job = self._load_stored(fingerprint, request)
            if job is not None:
                self.store_hits += 1
                self.jobs_run += 1
                return job
            self.store_misses += 1
        handler = getattr(self, f"_run_{request.kind}")
        job = handler(request)
        self.evaluations += 1
        self.jobs_run += 1
        if fingerprint is not None:
            self._store_job(fingerprint, job)
        return job

    def map(self, targets: Iterable[RequestLike]) -> List[SynthesisJob]:
        """Batch synthesis: every request runs through *this* session's
        design space, so shared subtrees (a 16-bit adder inside two
        different ALUs, say) are expanded, costed, and filtered once."""
        return [self.synthesize(target) for target in targets]

    # -- per-kind handlers --------------------------------------------
    def _run_spec(self, request: SynthesisRequest) -> SynthesisJob:
        result = self._synthesize_spec(request.spec)
        return SynthesisJob(request, result, session=self)

    def _run_netlist(self, request: SynthesisRequest) -> SynthesisJob:
        result = self._synthesize_netlist(request.netlist)
        return SynthesisJob(request, result, session=self)

    def _run_legend(self, request: SynthesisRequest) -> SynthesisJob:
        component = self._elaborate_legend(request)
        result = self._synthesize_spec(component.spec)
        # Default labels get upgraded to the elaborated component's
        # name -- on a copy, never mutating the caller's request.
        if not request.label or request.label == (request.generator or "legend"):
            request = replace(request, label=component.name)
        return SynthesisJob(request, result, session=self, component=component)

    def _run_hls(self, request: SynthesisRequest) -> SynthesisJob:
        from repro.hls import hls_synthesize

        hls = hls_synthesize(request.program, request.constraints)
        result = self._synthesize_netlist(hls.datapath.netlist)
        return SynthesisJob(request, result, session=self, hls=hls)

    # -- engine calls --------------------------------------------------
    # Per-job stats are restricted to the subgraph the request reaches
    # (`stats_for`), never the whole-space counts: a session's space
    # accumulates nodes across jobs, and a stored/served result must
    # not depend on what else the producing session happened to run.
    def _synthesize_spec(self, spec: ComponentSpec) -> SynthesisResult:
        before = self.space.snapshot_phases()
        start = time.perf_counter()
        configs = self.space.alternatives(spec)
        elapsed = time.perf_counter() - start
        alternatives = [
            DesignAlternative(i, config, self.space, spec)
            for i, config in enumerate(configs)
        ]
        return SynthesisResult(alternatives, self.space.stats_for([spec]),
                               elapsed, spec,
                               phases=self._phase_delta(before))

    def _synthesize_netlist(self, netlist: Netlist) -> SynthesisResult:
        before = self.space.snapshot_phases()
        start = time.perf_counter()
        configs = self.space.evaluate_netlist(netlist)
        elapsed = time.perf_counter() - start
        alternatives = [
            DesignAlternative(i, config, self.space, None)
            for i, config in enumerate(configs)
        ]
        roots = list(dict.fromkeys(m.spec for m in netlist.modules))
        return SynthesisResult(alternatives, self.space.stats_for(roots),
                               elapsed, phases=self._phase_delta(before))

    def _phase_delta(self, before: Dict[str, float]) -> Dict[str, float]:
        """This request's phase breakdown: the space's cumulative phase
        clocks minus the ``before`` snapshot (memoized subtrees cost
        nothing, so a warm-space request legitimately shows near-zero
        phases)."""
        return {
            phase: total - before.get(phase, 0.0)
            for phase, total in sorted(self.space.snapshot_phases().items())
            if total - before.get(phase, 0.0) > 0.0
        }

    def _elaborate_legend(self, request: SynthesisRequest):
        """LEGEND source -> GENUS component (libraries cached per
        source text, so batch runs parse each description once)."""
        from repro.legend import build_library

        source = request.legend_source
        library = self._legend_libraries.get(source)
        if library is None:
            library = build_library(source, name="session-legend")
            self._legend_libraries[source] = library
        names = library.declared_generator_names()
        name = request.generator or (names[0] if names else None)
        if name is None:
            from repro.legend.errors import LegendError

            raise LegendError("LEGEND source declares no generators")
        return library.generate(name, **request.params)

    # ------------------------------------------------------------------
    # the result store
    # ------------------------------------------------------------------
    def engine_digest(self) -> str:
        """Digest of the engine side of the fingerprint: the library
        data book plus the rulebase (memoized; invalidated by
        :meth:`retarget`)."""
        if self._engine_digest is None:
            from repro.store.fingerprint import (
                digest,
                library_digest,
                rulebase_digest,
            )

            self._engine_digest = digest([
                library_digest(self.library),
                rulebase_digest(self.rulebase),
            ])
        return self._engine_digest

    def fingerprint(self, target: RequestLike) -> Optional[str]:
        """The store key this session would use for ``target``, or
        ``None`` when the request is not content-addressable (netlist
        requests, custom order callables, unregisterable filters).
        Worker count and parallel backend are deliberately excluded:
        parallel evaluation is bit-identical to sequential."""
        from repro.store.fingerprint import session_fingerprint

        request = SynthesisRequest.coerce(target)
        return session_fingerprint(self, request)

    def _load_stored(self, fingerprint: str,
                     request: SynthesisRequest) -> Optional[SynthesisJob]:
        import sqlite3

        from repro.store.serialize import jsonable_payload, payload_to_job

        try:
            payload = self.store.get(fingerprint)
        except (sqlite3.Error, OSError):
            return None  # unreadable store degrades to a miss
        if payload is None or not jsonable_payload(payload):
            return None
        try:
            job = payload_to_job(payload, request, self)
        except (KeyError, TypeError, ValueError):
            # A malformed entry must degrade to a cache miss, never
            # break synthesis; the engine recomputes and overwrites it.
            return None
        # The store covers what is expensive -- expansion and evaluation
        # -- but a job also carries cheap frontend artifacts the payload
        # does not: the HLS result (schedule, state table, datapath
        # netlist; what the vhdl emitter renders) and the elaborated
        # LEGEND component.  A lazy loader rebuilds them on first
        # access, so a warm job is indistinguishable from a cold one
        # while the serving path (which reads neither) pays nothing.
        if request.kind == "hls":
            def _artifacts(request=request):
                from repro.hls import hls_synthesize

                return None, hls_synthesize(request.program,
                                            request.constraints)

            job._artifact_loader = _artifacts
        elif request.kind == "legend":
            def _artifacts(request=request):
                return self._elaborate_legend(request), None

            job._artifact_loader = _artifacts
        return job

    def _store_job(self, fingerprint: str, job: SynthesisJob) -> None:
        import sqlite3

        from repro.store.serialize import job_to_payload

        try:
            self.store.put(fingerprint, job_to_payload(job),
                           label=job.request.describe())
        except (sqlite3.Error, OSError):
            pass  # a result we cannot persist is still a result

    def store_stats(self) -> Dict[str, int]:
        """Serving counters: warm hits, misses, and engine runs."""
        return {
            "store_hits": self.store_hits,
            "store_misses": self.store_misses,
            "evaluations": self.evaluations,
        }

    def node_cache_stats(self) -> Dict[str, int]:
        """This session's share of node-cache traffic: subtrees served
        from the cache, probed-but-absent, and published.  (The
        attached :class:`~repro.nodestore.NodeStore` keeps its own
        process-wide totals across every session sharing it.)"""
        return dict(self.space.node_stats)

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    def materialize(self, spec: ComponentSpec,
                    alt: DesignAlternative) -> DesignTree:
        return self.space.materialize(spec, alt.config)

    def retarget(self, library: Any) -> Dict[str, int]:
        """Incrementally retarget this session to a new cell library
        (a ``CellLibrary`` or a registered name): leaf cell bindings
        are recomputed, the decomposition skeleton and its compiled
        timing programs survive, and memoized costs are invalidated so
        the next job re-costs only what the retarget touched.  See
        :func:`repro.lola.assistant.retarget_space` for the LOLA-side
        driver with rule adaptation.

        Retargeting detaches the result store: the rebound space keeps
        the *old* library's decomposition skeleton (that is the whole
        point of the incremental path), so its results are a
        session-local approximation of -- and may differ from -- what a
        fresh expansion under the new library would produce, and must
        neither be persisted under the new library's fingerprint nor
        mixed with entries that were.  The node cache is detached for
        the same reason (``rebind_library`` does it as well; clearing
        the handle here keeps the session's view consistent)."""
        self.library = create_library(library)
        self._engine_digest = None
        self.store = None
        self.node_store = None
        return self.space.rebind_library(self.library)

    def stats(self) -> Dict[str, int]:
        """Cumulative design-space statistics across all jobs run."""
        return self.space.stats()

    def describe(self) -> str:
        filter_name = getattr(self.perf_filter, "name",
                              type(self.perf_filter).__name__)
        return (
            f"Session(library={self.library.name}, "
            f"rules={len(self.rulebase)}, filter={filter_name}, "
            f"jobs={self.jobs_run})"
        )

    def __repr__(self) -> str:
        return self.describe()
